// Package planreg enumerates every synthesized locking plan in the
// tree. The evaluation modules each compile their own plan privately;
// whole-program checks — in particular the global lock-order embedding
// of verify.GlobalOrder that cmd/semlockvet drives — need all of them
// at once, under stable names. Adding a module with a synthesized plan
// means adding it here, which is what keeps "every certificate embeds
// globally" an honest claim.
package planreg

import (
	"sort"

	"repro/internal/adtspecs"
	"repro/internal/apps/gossip"
	"repro/internal/apps/intruder"
	"repro/internal/ir"
	"repro/internal/modules/cache"
	"repro/internal/modules/cia"
	"repro/internal/modules/graph"
	"repro/internal/modules/plan"
	"repro/internal/synth"
	"repro/internal/verify"
)

// Entry is one registered plan under its domain name.
type Entry struct {
	Domain string
	Res    *synth.Result
}

// All builds every registered plan with default options and returns
// them sorted by domain. Synthesis runs fresh here (a compile-time
// cost, a few milliseconds per module); the modules' own memoizing
// caches are unexported by design.
func All() []Entry {
	builders := []struct {
		domain   string
		sections []*ir.Atomic
		classOf  func(*ir.Atomic, string) string
	}{
		{"modules/cache", cache.Sections(), cache.ClassOf},
		{"modules/cia", []*ir.Atomic{cia.Section()}, nil},
		{"modules/graph", graph.Sections(), graph.ClassOf},
		{"apps/gossip", gossip.Sections(), gossip.ClassOf},
		{"apps/intruder", []*ir.Atomic{intruder.Section(), intruder.PopSection()}, nil},
	}
	entries := make([]Entry, 0, len(builders))
	for _, b := range builders {
		p := plan.MustBuild(b.sections, adtspecs.All(), b.classOf, plan.Options{})
		entries = append(entries, Entry{Domain: b.domain, Res: p.Res})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Domain < entries[j].Domain })
	return entries
}

// GlobalOrder accumulates every registered plan into one program-wide
// lock-order graph, ready for Check.
func GlobalOrder() *verify.GlobalOrder {
	g := verify.NewGlobalOrder()
	for _, e := range All() {
		e.Res.ExportOrder(e.Domain, g)
	}
	return g
}
