package planreg

import "testing"

// TestEveryCertificateEmbedsGlobally is the acceptance check behind
// `semlockvet -plans`: the per-section OS2PL certificates of every
// registered plan must embed into one acyclic program-wide lock-order
// graph (verify.GlobalOrder), with no class rank conflicts and no
// descending or cyclic acquisition edges.
func TestEveryCertificateEmbedsGlobally(t *testing.T) {
	entries := All()
	if len(entries) < 5 {
		t.Fatalf("registry lost plans: %d registered", len(entries))
	}
	g := GlobalOrder()
	if g.Classes() == 0 || g.Edges() == 0 {
		t.Fatalf("degenerate global order: %d classes, %d edges — exporter broke", g.Classes(), g.Edges())
	}
	for _, p := range g.Check() {
		t.Errorf("global order problem: %s", p)
	}
}
