// Package cache implements the Cache benchmark of §6.1: Tomcat's
// ConcurrentCache, built from two Map instances — a bounded eden and a
// longterm store (a WeakHashMap in Tomcat; a plain map here, see
// DESIGN.md substitution 4). Get is not read-only: on an eden miss it
// promotes the longterm entry back into eden. Put flushes eden into
// longterm when the size bound is reached.
package cache

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/adtspecs"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/modules/plan"
)

//semlockvet:file-ignore txndiscipline -- this file transcribes the synthesized plans by hand; it drives the raw mechanism on purpose

// Module is the benchmark interface.
type Module interface {
	Get(k int) core.Value
	Put(k int, v core.Value)
}

// Sections returns the two atomic procedures in IR.
//
//	get(k):  v = eden.get(k)
//	         if (v == null) { v = longterm.get(k); if (v != null) eden.put(k, v) }
//	put(k,v): s = eden.size()
//	          if (s >= limit) { longterm.putAll(eden); eden.clear() }
//	          eden.put(k, v)
func Sections() []*ir.Atomic {
	vars := func() []ir.Param {
		return []ir.Param{
			{Name: "eden", Type: "Map", IsADT: true, NonNull: true},
			{Name: "longterm", Type: "Map", IsADT: true, NonNull: true},
			{Name: "k", Type: "int"},
			{Name: "v", Type: "value"},
			{Name: "s", Type: "int"},
			{Name: "limit", Type: "int"},
		}
	}
	return []*ir.Atomic{
		{
			Name: "get",
			Vars: vars(),
			Body: ir.Block{
				&ir.Call{Recv: "eden", Method: "get", Args: []ir.Expr{ir.VarRef{Name: "k"}}, Assign: "v"},
				&ir.If{
					Cond: ir.IsNull{Var: "v"},
					Then: ir.Block{
						&ir.Call{Recv: "longterm", Method: "get", Args: []ir.Expr{ir.VarRef{Name: "k"}}, Assign: "v"},
						&ir.If{
							Cond: ir.NotNull{Var: "v"},
							Then: ir.Block{
								&ir.Call{Recv: "eden", Method: "put", Args: []ir.Expr{ir.VarRef{Name: "k"}, ir.VarRef{Name: "v"}}},
							},
						},
					},
				},
			},
		},
		{
			Name: "put",
			Vars: vars(),
			Body: ir.Block{
				&ir.Call{Recv: "eden", Method: "size", Assign: "s"},
				&ir.If{
					Cond: ir.OpaqueCond{Text: "s>=limit", Reads: []string{"s", "limit"}},
					Then: ir.Block{
						&ir.Call{Recv: "longterm", Method: "putAll", Args: []ir.Expr{ir.VarRef{Name: "eden"}}},
						&ir.Call{Recv: "eden", Method: "clear"},
					},
				},
				&ir.Call{Recv: "eden", Method: "put", Args: []ir.Expr{ir.VarRef{Name: "k"}, ir.VarRef{Name: "v"}}},
			},
		},
	}
}

// ClassOf splits eden and longterm into separate classes.
func ClassOf(sec *ir.Atomic, v string) string {
	switch v {
	case "eden":
		return "Map$eden"
	case "longterm":
		return "Map$longterm"
	}
	return sec.ADTType(v)
}

var planCache = plan.NewCache(func(opt plan.Options) *plan.Plan {
	return plan.MustBuild(Sections(), adtspecs.All(), ClassOf, opt)
})

// BuildPlan synthesizes the module; plans are memoized per Options.
func BuildPlan(opt plan.Options) *plan.Plan { return planCache.Get(opt) }

// New creates the named variant: "ours", "global", "2pl" or "manual".
// limit is the cache's size parameter (§6.1 uses 5000K).
func New(policy string, limit int, opt plan.Options) Module {
	switch policy {
	case "ours":
		return newOurs(limit, opt)
	case "global":
		return &global{eden: adt.NewHashMap(), longterm: adt.NewHashMap(), limit: limit}
	case "2pl":
		return &twoPL{
			eden: adt.NewHashMap(), longterm: adt.NewHashMap(), limit: limit,
			edenL: cc.NewInstanceLock(0), longL: cc.NewInstanceLock(1),
		}
	case "manual":
		return &manual{
			eden: adt.NewHashMap(), longterm: adt.NewHashMap(), limit: limit,
			stripes: cc.NewStriped(64),
		}
	default:
		panic(fmt.Sprintf("cache: unknown policy %q", policy))
	}
}

// Policies lists the variants in the order Fig 23 plots them.
func Policies() []string { return []string{"ours", "global", "2pl", "manual"} }

// ours executes the synthesized plan.
type ours struct {
	eden, longterm   *adt.HashMap
	edenSem, longSem *core.Semantic
	limit            int
	getEden, getLong func(core.Value) core.ModeID
	putEden          func(core.Value, core.Value) core.ModeID
	putLong          func(core.Value) core.ModeID
}

func newOurs(limit int, opt plan.Options) *ours {
	p := BuildPlan(opt)
	o := &ours{eden: adt.NewHashMap(), longterm: adt.NewHashMap(), limit: limit}
	o.edenSem = core.NewSemantic(p.Table("Map$eden"))
	o.longSem = core.NewSemantic(p.Table("Map$longterm"))
	o.getEden = p.Ref(0, "eden").Binder1("k")
	o.getLong = p.Ref(0, "longterm").Binder1("k")
	o.putEden = p.Ref(1, "eden").Binder2("k", "v")
	o.putLong = p.Ref(1, "longterm").Binder1("eden")
	return o
}

// LockStats sums both map instances' acquisition statistics.
func (o *ours) LockStats() core.LockStats {
	a, b := o.edenSem.Stats(), o.longSem.Stats()
	return core.LockStats{
		FastPath: a.FastPath + b.FastPath,
		Slow:     a.Slow + b.Slow,
		Waits:    a.Waits + b.Waits,
	}
}

func (o *ours) Get(k int) core.Value {
	me := o.getEden(k)
	o.edenSem.Acquire(me)
	v := o.eden.Get(k)
	if v == nil {
		ml := o.getLong(k)
		o.longSem.Acquire(ml)
		v = o.longterm.Get(k)
		if v != nil {
			o.eden.Put(k, v)
		}
		o.longSem.Release(ml)
	}
	o.edenSem.Release(me)
	return v
}

func (o *ours) Put(k int, v core.Value) {
	// The put set is {clear(), put(k,v), size()}: both k and v select
	// the mode (v adds no discrimination — put/put commutes on distinct
	// keys alone — so the v-differing modes merge into shared counters).
	me := o.putEden(k, v)
	o.edenSem.Acquire(me)
	if o.eden.Size() >= o.limit {
		// The putAll set's variable is the eden pointer itself; its
		// runtime value is the instance identity.
		ml := o.putLong(o.edenSem.ID())
		o.longSem.Acquire(ml)
		o.longterm.PutAll(o.eden)
		o.eden.Clear()
		o.longSem.Release(ml)
	}
	o.eden.Put(k, v)
	o.edenSem.Release(me)
}

type global struct {
	mu             cc.GlobalLock
	eden, longterm *adt.HashMap
	limit          int
}

func (g *global) Get(k int) core.Value {
	g.mu.Enter()
	defer g.mu.Exit()
	v := g.eden.Get(k)
	if v == nil {
		v = g.longterm.Get(k)
		if v != nil {
			g.eden.Put(k, v)
		}
	}
	return v
}

func (g *global) Put(k int, v core.Value) {
	g.mu.Enter()
	defer g.mu.Exit()
	if g.eden.Size() >= g.limit {
		g.longterm.PutAll(g.eden)
		g.eden.Clear()
	}
	g.eden.Put(k, v)
}

type twoPL struct {
	eden, longterm *adt.HashMap
	edenL, longL   *cc.InstanceLock
	limit          int
}

func (t *twoPL) Get(k int) core.Value {
	var tx cc.TwoPL
	tx.Lock(t.edenL)
	defer tx.UnlockAll()
	v := t.eden.Get(k)
	if v == nil {
		tx.Lock(t.longL)
		v = t.longterm.Get(k)
		if v != nil {
			t.eden.Put(k, v)
		}
	}
	return v
}

func (t *twoPL) Put(k int, v core.Value) {
	var tx cc.TwoPL
	tx.Lock(t.edenL)
	defer tx.UnlockAll()
	if t.eden.Size() >= t.limit {
		tx.Lock(t.longL)
		t.longterm.PutAll(t.eden)
		t.eden.Clear()
	}
	t.eden.Put(k, v)
}

// manual is the hand-optimized variant (derived, like the paper's, from
// the foresight-based implementation of [9]): key-striped locks for the
// common path and a stop-the-world full-stripe sweep for the rare eden
// flush.
type manual struct {
	eden, longterm *adt.HashMap
	stripes        *cc.Striped
	limit          int
}

func (m *manual) Get(k int) core.Value {
	m.stripes.Lock(k)
	defer m.stripes.Unlock(k)
	v := m.eden.Get(k)
	if v == nil {
		v = m.longterm.Get(k)
		if v != nil {
			m.eden.Put(k, v)
		}
	}
	return v
}

func (m *manual) Put(k int, v core.Value) {
	//semlockvet:ignore guardedby -- deliberate racy pre-check: the size is re-read under LockAll before the flush commits
	if m.eden.Size() >= m.limit {
		// Rare path: take every stripe (in index order) and flush.
		m.stripes.LockAll()
		if m.eden.Size() >= m.limit {
			m.longterm.PutAll(m.eden)
			m.eden.Clear()
		}
		m.stripes.UnlockAll()
	}
	m.stripes.Lock(k)
	m.eden.Put(k, v)
	m.stripes.Unlock(k)
}
