package cache

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/modules/plan"
)

// TestPlanShape asserts the synthesized plan behind "ours".
func TestPlanShape(t *testing.T) {
	p := BuildPlan(plan.Options{AbstractValues: 8})
	if set := p.LockSet(0, "eden").Key(); set != "{get(k),put(k,*)}" {
		t.Errorf("get section eden lock = %s", set)
	}
	if set := p.LockSet(0, "longterm").Key(); set != "{get(k)}" {
		t.Errorf("get section longterm lock = %s", set)
	}
	if set := p.LockSet(1, "eden").Key(); set != "{clear(),put(k,v),size()}" {
		t.Errorf("put section eden lock = %s", set)
	}
	if set := p.LockSet(1, "longterm").Key(); set != "{putAll(eden)}" {
		t.Errorf("put section longterm lock = %s", set)
	}
	if p.Rank("Map$eden") >= p.Rank("Map$longterm") {
		t.Error("eden must rank before longterm")
	}
	// The printed get section locks eden up front and longterm on the
	// miss path only.
	out := p.Print(0)
	if !strings.Contains(out, "eden.lock({get(k),put(k,*)})") {
		t.Errorf("get plan:\n%s", out)
	}
	if !strings.Contains(out, "longterm.lock({get(k)})") {
		t.Errorf("get plan must lock longterm on the miss path:\n%s", out)
	}
}

// TestVariantsSequential checks cache semantics: put→get, eviction to
// longterm at the limit, and promotion back into eden.
func TestVariantsSequential(t *testing.T) {
	for _, pol := range Policies() {
		t.Run(pol, func(t *testing.T) {
			c := New(pol, 4, plan.Options{AbstractValues: 8})
			if c.Get(1) != nil {
				t.Fatal("empty cache returned a value")
			}
			for i := 0; i < 4; i++ {
				c.Put(i, fmt.Sprintf("v%d", i))
			}
			// Eden is at the limit; the next put flushes.
			c.Put(99, "v99")
			// Earlier entries live in longterm and must be promoted on Get.
			for i := 0; i < 4; i++ {
				if got := c.Get(i); got != fmt.Sprintf("v%d", i) {
					t.Errorf("Get(%d) = %v after flush", i, got)
				}
			}
			if got := c.Get(99); got != "v99" {
				t.Errorf("Get(99) = %v", got)
			}
		})
	}
}

// TestVariantsNoLostValues: concurrently, Get must never return a value
// that was not Put for that key, and a key that was Put (and never
// re-Put) must retain its value through flushes and promotions.
func TestVariantsNoLostValues(t *testing.T) {
	for _, pol := range Policies() {
		t.Run(pol, func(t *testing.T) {
			c := New(pol, 32, plan.Options{AbstractValues: 8})
			const keys = 64
			// Each key k is only ever bound to k*10.
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < 1500; i++ {
						k := rng.Intn(keys)
						if rng.Intn(10) == 0 {
							c.Put(k, k*10)
						} else {
							if v := c.Get(k); v != nil && v != k*10 {
								t.Errorf("%s: Get(%d) = %v, want %d or nil", pol, k, v, k*10)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			// Every key that was put must still be retrievable.
			for k := 0; k < keys; k++ {
				c.Put(k, k*10)
			}
			for k := 0; k < keys; k++ {
				if v := c.Get(k); v != k*10 {
					t.Errorf("%s: final Get(%d) = %v", pol, k, v)
				}
			}
		})
	}
}
