package plan

import (
	"strings"
	"testing"

	"repro/internal/adtspecs"
	"repro/internal/ir"
	"repro/internal/papersec"
)

func buildFig1(t *testing.T, opt Options) *Plan {
	t.Helper()
	p, err := Build([]*ir.Atomic{papersec.Fig1()}, adtspecs.All(), nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlanAccessors(t *testing.T) {
	p := buildFig1(t, Options{AbstractValues: 8})
	if p.Rank("Map") != 0 || p.Rank("Set") != 1 || p.Rank("Queue") != 2 {
		t.Errorf("ranks: %d %d %d", p.Rank("Map"), p.Rank("Set"), p.Rank("Queue"))
	}
	if set := p.LockSet(0, "map").Key(); set != "{get(id),put(id,*),remove(id)}" {
		t.Errorf("map lock set = %s", set)
	}
	if set := p.LockSet(0, "queue").Key(); set != "{enqueue(set)}" {
		t.Errorf("queue lock set = %s", set)
	}
	if !strings.Contains(p.Print(0), "map.lock(") {
		t.Error("Print missing lock")
	}
	ref := p.Ref(0, "map")
	if got := ref.Vars(); len(got) != 1 || got[0] != "id" {
		t.Errorf("Ref vars = %v", got)
	}
}

func TestPlanGenericUnderNoRefine(t *testing.T) {
	p := buildFig1(t, Options{NoRefine: true, AbstractValues: 4})
	// The generic lock resolves to the whole-ADT set.
	set := p.LockSet(0, "map")
	if !set.IsConstant() {
		t.Errorf("generic set must be constant: %s", set)
	}
	if len(set) != len(adtspecs.Map().Methods()) {
		t.Errorf("generic set should cover all methods: %s", set)
	}
}

func TestPlanPanics(t *testing.T) {
	p := buildFig1(t, Options{AbstractValues: 4})
	for name, f := range map[string]func(){
		"missing table":    func() { p.Table("Nope") },
		"missing lock var": func() { p.LockSet(0, "ghost") },
		"missing ref":      func() { p.Ref(0, "ghost") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild with no sections must panic")
		}
	}()
	MustBuild(nil, adtspecs.All(), nil, Options{})
}
