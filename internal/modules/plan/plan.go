// Package plan builds the synthesized locking plans that the evaluation
// modules (§6.1) execute. Each module declares its atomic sections in
// IR, runs the full synthesis pipeline, and pulls out the compiled mode
// tables and the refined symbolic set locked at each section's lock
// sites. The hand-written module code then executes exactly the plan —
// and the module tests assert the printed plan matches, so the
// benchmarks measure the compiler's actual output.
package plan

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/synth"
)

// Plan is a synthesized program plus convenient accessors.
type Plan struct {
	Res *synth.Result
}

// Options mirror the ablation switches of the evaluation (DESIGN.md A1–A4).
type Options struct {
	// AbstractValues is the φ range n (§5.1); 0 means the paper's 64.
	AbstractValues int
	// NoRefine keeps generic whole-ADT locks (ablation A1).
	NoRefine bool
	// NoPartition disables lock partitioning (ablation A3).
	NoPartition bool
	// MaxModes caps the per-class mode count (§5.3 opt. 3); 0 = default.
	MaxModes int
}

// Cache memoizes compiled plans per Options — synthesis (in particular
// the O(modes²) commutativity function) is a compile-time cost that
// module constructors must not pay repeatedly.
type Cache struct {
	mu    sync.Mutex
	plans map[Options]*Plan
	build func(Options) *Plan
}

// NewCache creates a memoizing plan builder.
func NewCache(build func(Options) *Plan) *Cache {
	return &Cache{plans: map[Options]*Plan{}, build: build}
}

// Get returns the plan for the options, compiling it on first use.
func (c *Cache) Get(opt Options) *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.plans[opt]; ok {
		return p
	}
	p := c.build(opt)
	c.plans[opt] = p
	return p
}

// Build synthesizes the sections with the given specs and options.
func Build(sections []*ir.Atomic, specs map[string]*core.Spec, classOf func(*ir.Atomic, string) string, opt Options) (*Plan, error) {
	n := opt.AbstractValues
	if n == 0 {
		n = core.DefaultAbstractValues
	}
	res, err := synth.Synthesize(&synth.Program{
		Sections: sections,
		Specs:    specs,
		ClassOf:  classOf,
	}, synth.Options{
		StopAfter:           synth.StageRefine,
		NoRefine:            opt.NoRefine,
		Phi:                 core.NewPhi(n),
		MaxModes:            opt.MaxModes,
		DisablePartitioning: opt.NoPartition,
		Verify:              true,
	})
	if err != nil {
		return nil, err
	}
	return &Plan{Res: res}, nil
}

// MustBuild panics on error (module constructors with fixed sections).
func MustBuild(sections []*ir.Atomic, specs map[string]*core.Spec, classOf func(*ir.Atomic, string) string, opt Options) *Plan {
	p, err := Build(sections, specs, classOf, opt)
	if err != nil {
		panic(err)
	}
	return p
}

// Table returns the compiled mode table of a class.
func (p *Plan) Table(classKey string) *core.ModeTable {
	t := p.Res.Tables[classKey]
	if t == nil {
		panic(fmt.Sprintf("plan: no table for class %q", classKey))
	}
	return t
}

// Rank returns the lock-order rank of a class.
func (p *Plan) Rank(classKey string) int { return p.Res.Rank(classKey) }

// LockSet returns the symbolic set the synthesized section si locks for
// variable v (the set carried by its LV/LV2 statement). Generic locks
// return the whole-ADT set.
func (p *Plan) LockSet(si int, v string) core.SymSet {
	sec := p.Res.Sections[si]
	var found core.SymSet
	var ok bool
	var visit func(b ir.Block)
	visit = func(b ir.Block) {
		for _, s := range b {
			switch x := s.(type) {
			case *ir.LV:
				if x.Var == v && !ok {
					found, ok = p.resolve(si, v, x.Set, x.Generic), true
				}
			case *ir.LV2:
				for _, lv := range x.Vars {
					if lv == v && !ok {
						found, ok = p.resolve(si, v, x.Set, x.Generic), true
					}
				}
			case *ir.If:
				visit(x.Then)
				visit(x.Else)
			case *ir.While:
				visit(x.Body)
			}
		}
	}
	visit(sec.Body)
	if !ok {
		panic(fmt.Sprintf("plan: section %d has no lock of %q", si, v))
	}
	return found
}

func (p *Plan) resolve(si int, v string, set core.SymSet, generic bool) core.SymSet {
	if !generic {
		return set
	}
	key, _ := p.Res.Classes.ClassOfVar(si, v)
	return p.Res.Classes.ByKey[key].Spec.AllOpsSet()
}

// Ref returns the SetRef for the lock of variable v in section si,
// against the class's table — the handle module code uses on its hot
// path.
func (p *Plan) Ref(si int, v string) core.SetRef {
	key, ok := p.Res.Classes.ClassOfVar(si, v)
	if !ok {
		panic(fmt.Sprintf("plan: no class for %q in section %d", v, si))
	}
	return p.Table(key).Set(p.LockSet(si, v))
}

// Print renders section si (for plan-assertion tests).
func (p *Plan) Print(si int) string { return ir.Print(p.Res.Sections[si]) }
