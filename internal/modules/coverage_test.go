// Package modules_test verifies, for every evaluation module, that the
// hand-written "ours" code paths match the synthesized plans: the mode
// each implementation acquires covers exactly the runtime operations the
// implementation performs inside it (the S2PL rule of §2.3, checked
// statically against the compiled tables).
package modules_test

import (
	"testing"

	"repro/internal/apps/gossip"
	"repro/internal/apps/intruder"
	"repro/internal/core"
	"repro/internal/modules/cache"
	"repro/internal/modules/cia"
	"repro/internal/modules/graph"
	"repro/internal/modules/plan"
)

func opts() plan.Options { return plan.Options{AbstractValues: 8} }

func mustCover(t *testing.T, tbl *core.ModeTable, m core.ModeID, ops ...core.Op) {
	t.Helper()
	for _, op := range ops {
		if !tbl.CoversOp(m, op) {
			t.Errorf("mode %s does not cover %s", tbl.Mode(m), op)
		}
	}
}

func mustNotCover(t *testing.T, tbl *core.ModeTable, m core.ModeID, ops ...core.Op) {
	t.Helper()
	for _, op := range ops {
		if tbl.CoversOp(m, op) {
			t.Errorf("mode %s unexpectedly covers %s", tbl.Mode(m), op)
		}
	}
}

// TestCIACoverage: the CIA transaction performs get(k) and put(k, v);
// the acquired mode must cover both for the transaction's own key and
// neither for keys in other buckets.
func TestCIACoverage(t *testing.T) {
	p := cia.BuildPlan(opts())
	tbl := p.Table("Map")
	ref := p.Ref(0, "map")
	k := 7
	m := ref.Mode(k)
	mustCover(t, tbl, m,
		core.NewOp("get", k),
		core.NewOp("put", k, "any-value"),
	)
	// A key from a different bucket must not be covered.
	for other := 8; other < 300; other++ {
		if ref.Mode(other) != m {
			mustNotCover(t, tbl, m, core.NewOp("get", other), core.NewOp("put", other, 1))
			break
		}
	}
	// The CIA section never removes; its mode must not license it.
	mustNotCover(t, tbl, m, core.NewOp("remove", k), core.NewOp("size"))
}

// TestGraphCoverage: each graph procedure's modes cover exactly its
// operations.
func TestGraphCoverage(t *testing.T) {
	p := graph.BuildPlan(opts())
	succs := p.Table("Multimap$succs")
	preds := p.Table("Multimap$preds")

	s, d, n := 3, 9, 5
	find := p.Ref(0, "succs").Binder("n")(n)
	mustCover(t, succs, find, core.NewOp("get", n))
	mustNotCover(t, succs, find, core.NewOp("put", n, d), core.NewOp("remove", n, d))

	ins := p.Ref(2, "succs").Binder("s", "d")(s, d)
	mustCover(t, succs, ins, core.NewOp("put", s, d))
	mustNotCover(t, succs, ins, core.NewOp("get", s), core.NewOp("removeAll", s))

	insP := p.Ref(2, "preds").Binder("d", "s")(d, s)
	mustCover(t, preds, insP, core.NewOp("put", d, s))

	rem := p.Ref(3, "succs").Binder("s", "d")(s, d)
	mustCover(t, succs, rem, core.NewOp("remove", s, d))
	mustNotCover(t, succs, rem, core.NewOp("put", s, d))

	// And the cross-mode conflict the swapped-argument bug would lose:
	// find(s) must conflict with insert(s, d).
	findS := p.Ref(0, "succs").Binder("n")(s)
	if succs.Commute(findS, ins) {
		t.Error("find(s) must conflict with insert(s,d) — get/put on one key")
	}
}

// TestCacheCoverage: Get's eden mode covers the promotion put; Put's
// eden mode covers size, clear and the put.
func TestCacheCoverage(t *testing.T) {
	p := cache.BuildPlan(opts())
	eden := p.Table("Map$eden")
	long := p.Table("Map$longterm")

	k, v := 11, "val"
	get := p.Ref(0, "eden").Mode(k)
	mustCover(t, eden, get, core.NewOp("get", k), core.NewOp("put", k, v))
	mustNotCover(t, eden, get, core.NewOp("size"), core.NewOp("clear"))

	put := p.Ref(1, "eden").Binder("k", "v")(k, v)
	mustCover(t, eden, put,
		core.NewOp("size"), core.NewOp("clear"), core.NewOp("put", k, v))

	lget := p.Ref(0, "longterm").Mode(k)
	mustCover(t, long, lget, core.NewOp("get", k))
	mustNotCover(t, long, lget, core.NewOp("put", k, v))
}

// TestIntruderCoverage: the reassembly mode covers get/put/remove of
// the flow and the pop mode covers dequeue.
func TestIntruderCoverage(t *testing.T) {
	p := intruder.BuildPlan(opts())
	fmapTbl := p.Table("Map")
	qTbl := p.Table("Queue")

	flow := 1234
	m := p.Ref(0, "fmap").Mode(flow)
	mustCover(t, fmapTbl, m,
		core.NewOp("get", flow),
		core.NewOp("put", flow, "state"),
		core.NewOp("remove", flow),
	)
	enc := p.Ref(0, "decoded").Mode("payload")
	mustCover(t, qTbl, enc, core.NewOp("enqueue", "payload"))
	mustNotCover(t, qTbl, enc, core.NewOp("dequeue"))
	pop := p.Ref(1, "decoded").Mode()
	mustCover(t, qTbl, pop, core.NewOp("dequeue"))
}

// TestGossipCoverage: the router's modes cover the member-map
// operations each section performs.
func TestGossipCoverage(t *testing.T) {
	p := gossip.BuildPlan(plan.Options{AbstractValues: 8, MaxModes: 1024})
	members := p.Table("Map$members")
	groups := p.Table("Map$groups")

	reg := p.Ref(0, "members").Binder("m", "conn")("alice", "conn-id")
	mustCover(t, members, reg, core.NewOp("put", "alice", "conn-id"))

	mc := p.Ref(3, "members").Mode()
	mustCover(t, members, mc, core.NewOp("values"))
	mustNotCover(t, members, mc, core.NewOp("put", "alice", 1))

	rg := p.Ref(0, "groups").Mode("g1")
	mustCover(t, groups, rg, core.NewOp("get", "g1"), core.NewOp("put", "g1", "anything"))
}
