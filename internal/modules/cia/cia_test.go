package cia

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/modules/plan"
)

// TestPlanShape asserts the synthesized plan the "ours" variant
// hand-executes: one lock on the map in mode {get(key),put(key,*)},
// released at the section end.
func TestPlanShape(t *testing.T) {
	p := BuildPlan(plan.Options{})
	got := p.Print(0)
	want := `atomic computeIfAbsent {
  map.lock({get(key),put(key,*)});
  value=map.get(key);
  if(value==null) {
    value=compute();
    map.put(key, value);
  }
  map.unlockAll();
}
`
	if got != want {
		t.Errorf("plan:\n%s\nwant:\n%s", got, want)
	}
	if key := p.LockSet(0, "map").Key(); key != "{get(key),put(key,*)}" {
		t.Errorf("lock set = %s", key)
	}
	// The Map table admits per-bucket parallelism: distinct-bucket modes
	// commute.
	tbl := p.Table("Map")
	ref := p.Ref(0, "map")
	if tbl.Commute(ref.Mode(1), ref.Mode(1)) {
		t.Error("same-key modes must conflict (get vs put)")
	}
	found := false
	for k := 2; k < 200; k++ {
		if ref.Mode(1) != ref.Mode(k) {
			if !tbl.Commute(ref.Mode(1), ref.Mode(k)) {
				t.Error("distinct-bucket modes must commute")
			}
			found = true
			break
		}
	}
	if !found {
		t.Error("no distinct bucket found")
	}
}

// TestVariantsSequential: every variant satisfies the computeIfAbsent
// contract sequentially.
func TestVariantsSequential(t *testing.T) {
	for _, pol := range Policies() {
		t.Run(pol, func(t *testing.T) {
			m := New(pol, plan.Options{})
			v1 := m.ComputeIfAbsent(7)
			if v1 == nil || len(v1) != ComputeSize {
				t.Fatalf("computed value wrong: %v", v1)
			}
			v2 := m.ComputeIfAbsent(7)
			if &v1[0] != &v2[0] {
				t.Error("second call must return the same value")
			}
			v3 := m.ComputeIfAbsent(8)
			if &v1[0] == &v3[0] {
				t.Error("distinct keys must get distinct values")
			}
		})
	}
}

// TestVariantsAtomicity: under heavy same-key contention, every variant
// must hand out exactly one value per key — the bug class this pattern
// is famous for ([22]) is two threads both computing.
func TestVariantsAtomicity(t *testing.T) {
	for _, pol := range Policies() {
		t.Run(pol, func(t *testing.T) {
			m := New(pol, plan.Options{})
			const goroutines = 8
			const keys = 13
			results := make([][]([]byte), goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					results[g] = make([][]byte, keys)
					for i := 0; i < 500; i++ {
						k := (g + i) % keys
						v := m.ComputeIfAbsent(k)
						if results[g][k] != nil && &results[g][k][0] != &v[0] {
							t.Errorf("%s: key %d changed value", pol, k)
							return
						}
						results[g][k] = v
					}
				}(g)
			}
			wg.Wait()
			for k := 0; k < keys; k++ {
				var first []byte
				for g := 0; g < goroutines; g++ {
					if results[g][k] == nil {
						continue
					}
					if first == nil {
						first = results[g][k]
					} else if &first[0] != &results[g][k][0] {
						t.Errorf("%s: key %d has two values (atomicity broken)", pol, k)
					}
				}
			}
		})
	}
}

// TestAblationNoRefine: the A1 variant locks the whole ADT generically.
func TestAblationNoRefine(t *testing.T) {
	p := BuildPlan(plan.Options{NoRefine: true})
	if !strings.Contains(p.Print(0), "map.lock(+)") {
		t.Errorf("NoRefine plan should use generic lock:\n%s", p.Print(0))
	}
	m := New("ours", plan.Options{NoRefine: true})
	a, b := m.ComputeIfAbsent(1), m.ComputeIfAbsent(1)
	if &a[0] != &b[0] {
		t.Error("NoRefine variant broken")
	}
}

// TestAblationSmallPhi: fewer abstract values still correct.
func TestAblationSmallPhi(t *testing.T) {
	m := New("ours", plan.Options{AbstractValues: 2})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.ComputeIfAbsent(i % 5)
			}
		}(g)
	}
	wg.Wait()
}
