// Package cia implements the ComputeIfAbsent benchmark of §6.1: the
// widely used (and widely mis-synchronized, [22]) pattern
//
//	if(!map.containsKey(key)) {
//	    value = ... // pure computation
//	    map.put(key, value);
//	}
//
// as one atomic section over a shared Map, in every synchronization
// variant of the evaluation: the synthesized semantic locking (Ours),
// a single global lock (Global), per-instance two-phase locking (2PL),
// 64-way lock striping (Manual), and the hand-crafted CHM-V8 style
// per-bucket computeIfAbsent (V8).
package cia

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/adtspecs"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/modules/plan"
)

//semlockvet:file-ignore txndiscipline -- this file transcribes the synthesized plans by hand; it drives the raw mechanism on purpose

// ComputeSize is the paper's emulated computation: a 128-byte
// allocation.
const ComputeSize = 128

func compute() []byte { return make([]byte, ComputeSize) }

// Module is the benchmark interface. ComputeIfAbsent returns the value
// now bound to key (freshly computed or pre-existing).
type Module interface {
	ComputeIfAbsent(key int) []byte
}

// Section is the benchmark's atomic section in IR — the exact input the
// synthesizer compiles. It is the get/put rendering of the pattern
// (equivalent to the containsKey form, and what a computeIfAbsent that
// returns the value executes):
//
//	value = map.get(key);
//	if(value == null) { value = compute(); map.put(key, value); }
func Section() *ir.Atomic {
	return &ir.Atomic{
		Name: "computeIfAbsent",
		Vars: []ir.Param{
			{Name: "map", Type: "Map", IsADT: true, NonNull: true},
			{Name: "key", Type: "int"},
			{Name: "value", Type: "bytes"},
		},
		Body: ir.Block{
			&ir.Call{Recv: "map", Method: "get", Args: []ir.Expr{ir.VarRef{Name: "key"}}, Assign: "value"},
			&ir.If{
				Cond: ir.IsNull{Var: "value"},
				Then: ir.Block{
					&ir.Assign{Lhs: "value", Rhs: ir.Opaque{Text: "compute()"}},
					&ir.Call{Recv: "map", Method: "put", Args: []ir.Expr{ir.VarRef{Name: "key"}, ir.VarRef{Name: "value"}}},
				},
			},
		},
	}
}

var planCache = plan.NewCache(func(opt plan.Options) *plan.Plan {
	return plan.MustBuild([]*ir.Atomic{Section()}, adtspecs.All(), nil, opt)
})

// BuildPlan synthesizes the section (exposed for the plan-assertion
// tests and the report tooling); plans are memoized per Options.
func BuildPlan(opt plan.Options) *plan.Plan { return planCache.Get(opt) }

// New creates the named variant: "ours", "global", "2pl", "manual" or
// "v8". opt applies to "ours" only.
func New(policy string, opt plan.Options) Module {
	switch policy {
	case "ours":
		return newOurs(opt)
	case "global":
		return &globalCIA{m: adt.NewHashMap()}
	case "2pl":
		return &twoPLCIA{m: adt.NewHashMap(), lock: cc.NewInstanceLock(0)}
	case "manual":
		return &manualCIA{m: adt.NewHashMap(), stripes: cc.NewStriped(64)}
	case "v8":
		return &v8CIA{m: adt.NewHashMap()}
	default:
		panic(fmt.Sprintf("cia: unknown policy %q", policy))
	}
}

// Policies lists the variants in the order Fig 21 plots them.
func Policies() []string { return []string{"ours", "global", "2pl", "manual", "v8"} }

// ours executes the synthesized plan: one semantic lock on the map in
// the mode selected by φ(key) for the refined set
// {containsKey(key), put(key,*)}.
type ours struct {
	m     *adt.HashMap
	sem   *core.Semantic
	ref   core.SetRef
	keyed bool // false under ablation A1: the generic set has no variables
}

func newOurs(opt plan.Options) *ours {
	p := BuildPlan(opt)
	o := &ours{m: adt.NewHashMap()}
	o.sem = core.NewSemantic(p.Table("Map"))
	o.ref = p.Ref(0, "map")
	o.keyed = len(o.ref.Vars()) > 0
	return o
}

// LockStats exposes the map instance's acquisition statistics.
func (o *ours) LockStats() core.LockStats { return o.sem.Stats() }

func (o *ours) ComputeIfAbsent(key int) []byte {
	var mode core.ModeID
	if o.keyed {
		mode = o.ref.Mode(key)
	} else {
		mode = o.ref.Mode()
	}
	o.sem.Acquire(mode)
	defer o.sem.Release(mode)
	if v := o.m.Get(key); v != nil {
		return v.([]byte)
	}
	v := compute()
	o.m.Put(key, v)
	return v
}

type globalCIA struct {
	m  *adt.HashMap
	mu cc.GlobalLock
}

func (g *globalCIA) ComputeIfAbsent(key int) []byte {
	g.mu.Enter()
	defer g.mu.Exit()
	if v := g.m.Get(key); v != nil {
		return v.([]byte)
	}
	v := compute()
	g.m.Put(key, v)
	return v
}

type twoPLCIA struct {
	m    *adt.HashMap
	lock *cc.InstanceLock
}

func (t *twoPLCIA) ComputeIfAbsent(key int) []byte {
	var tx cc.TwoPL
	tx.Lock(t.lock)
	defer tx.UnlockAll()
	if v := t.m.Get(key); v != nil {
		return v.([]byte)
	}
	v := compute()
	t.m.Put(key, v)
	return v
}

type manualCIA struct {
	m       *adt.HashMap
	stripes *cc.Striped
}

func (m *manualCIA) ComputeIfAbsent(key int) []byte {
	m.stripes.Lock(key)
	defer m.stripes.Unlock(key)
	if v := m.m.Get(key); v != nil {
		return v.([]byte)
	}
	v := compute()
	m.m.Put(key, v)
	return v
}

type v8CIA struct {
	m *adt.HashMap
}

func (v *v8CIA) ComputeIfAbsent(key int) []byte {
	//semlockvet:ignore guardedby -- the whole point of the v8 variant: one internally atomic ComputeIfAbsent, no outer section
	return v.m.ComputeIfAbsent(key, func() core.Value { return compute() }).([]byte)
}
