// Package papersec constructs the paper's running-example atomic
// sections (Figs 1, 4, 7, 9) as IR values. They are shared by the
// synthesizer's golden tests — which reproduce Figs 2, 13–15, 17, 18 and
// 26–28 — and by the examples.
package papersec

import "repro/internal/ir"

// Fig1 is the atomic section of Fig 1 (inspired by Intruder): a Map, a
// Set and a Queue manipulated together.
//
//	atomic {
//	  set=map.get(id);
//	  if(set==null) { set=new Set(); map.put(id, set); }
//	  set.add(x); set.add(y);
//	  if(flag) { queue.enqueue(set); map.remove(id); }
//	}
func Fig1() *ir.Atomic {
	return &ir.Atomic{
		Name: "fig1",
		Vars: []ir.Param{
			{Name: "map", Type: "Map", IsADT: true, NonNull: true},
			{Name: "queue", Type: "Queue", IsADT: true, NonNull: true},
			{Name: "set", Type: "Set", IsADT: true},
			{Name: "id", Type: "int"},
			{Name: "x", Type: "int"},
			{Name: "y", Type: "int"},
			{Name: "flag", Type: "boolean"},
		},
		Body: ir.Block{
			&ir.Call{Recv: "map", Method: "get", Args: []ir.Expr{ir.VarRef{Name: "id"}}, Assign: "set"},
			&ir.If{
				Cond: ir.IsNull{Var: "set"},
				Then: ir.Block{
					&ir.Assign{Lhs: "set", NewType: "Set"},
					&ir.Call{Recv: "map", Method: "put", Args: []ir.Expr{ir.VarRef{Name: "id"}, ir.VarRef{Name: "set"}}},
				},
			},
			&ir.Call{Recv: "set", Method: "add", Args: []ir.Expr{ir.VarRef{Name: "x"}}},
			&ir.Call{Recv: "set", Method: "add", Args: []ir.Expr{ir.VarRef{Name: "y"}}},
			&ir.If{
				Cond: ir.OpaqueCond{Text: "flag", Reads: []string{"flag"}},
				Then: ir.Block{
					&ir.Call{Recv: "queue", Method: "enqueue", Args: []ir.Expr{ir.VarRef{Name: "set"}}},
					&ir.Call{Recv: "map", Method: "remove", Args: []ir.Expr{ir.VarRef{Name: "id"}}},
				},
			},
		},
	}
}

// Fig4 is the two-Set section of Fig 4:
//
//	void f(Set x, Set y) { atomic { int i = x.size(); y.add(i); } }
func Fig4() *ir.Atomic {
	return &ir.Atomic{
		Name: "fig4",
		Vars: []ir.Param{
			{Name: "x", Type: "Set", IsADT: true, NonNull: true},
			{Name: "y", Type: "Set", IsADT: true, NonNull: true},
			{Name: "i", Type: "int"},
		},
		Body: ir.Block{
			&ir.Call{Recv: "x", Method: "size", Assign: "i"},
			&ir.Call{Recv: "y", Method: "add", Args: []ir.Expr{ir.VarRef{Name: "i"}}},
		},
	}
}

// Fig7 is the atomic section of Fig 7: a Map, a Queue and two Sets.
//
//	atomic {
//	  Set s1 = m.get(key1);
//	  Set s2 = m.get(key2);
//	  if(s1!=null && s2!=null) {
//	    s1.add(1); s2.add(2); q.enqueue(s1);
//	  }
//	}
func Fig7() *ir.Atomic {
	return &ir.Atomic{
		Name: "fig7",
		Vars: []ir.Param{
			{Name: "m", Type: "Map", IsADT: true, NonNull: true},
			{Name: "q", Type: "Queue", IsADT: true, NonNull: true},
			{Name: "s1", Type: "Set", IsADT: true},
			{Name: "s2", Type: "Set", IsADT: true},
			{Name: "key1", Type: "int"},
			{Name: "key2", Type: "int"},
		},
		Body: ir.Block{
			&ir.Call{Recv: "m", Method: "get", Args: []ir.Expr{ir.VarRef{Name: "key1"}}, Assign: "s1"},
			&ir.Call{Recv: "m", Method: "get", Args: []ir.Expr{ir.VarRef{Name: "key2"}}, Assign: "s2"},
			&ir.If{
				Cond: ir.OpaqueCond{Text: "s1!=null && s2!=null", Reads: []string{"s1", "s2"}},
				Then: ir.Block{
					&ir.Call{Recv: "s1", Method: "add", Args: []ir.Expr{ir.Lit{Val: 1}}},
					&ir.Call{Recv: "s2", Method: "add", Args: []ir.Expr{ir.Lit{Val: 2}}},
					&ir.Call{Recv: "q", Method: "enqueue", Args: []ir.Expr{ir.VarRef{Name: "s1"}}},
				},
			},
		},
	}
}

// Fig9 is the loop section of Fig 9, whose restrictions-graph has a
// cycle (Fig 10):
//
//	atomic {
//	  sum=0;
//	  for(int i=0;i<n;i++) {
//	    set = map.get(i);
//	    if(set!=null) sum += set.size();
//	  }
//	}
func Fig9() *ir.Atomic {
	return &ir.Atomic{
		Name: "fig9",
		Vars: []ir.Param{
			{Name: "map", Type: "Map", IsADT: true, NonNull: true},
			{Name: "set", Type: "Set", IsADT: true},
			{Name: "sum", Type: "int"},
			{Name: "i", Type: "int"},
			{Name: "n", Type: "int"},
		},
		Body: ir.Block{
			&ir.Assign{Lhs: "sum", Rhs: ir.Opaque{Text: "0"}},
			&ir.Assign{Lhs: "i", Rhs: ir.Opaque{Text: "0"}},
			&ir.While{
				Cond: ir.OpaqueCond{Text: "i<n", Reads: []string{"i", "n"}},
				Body: ir.Block{
					&ir.Call{Recv: "map", Method: "get", Args: []ir.Expr{ir.VarRef{Name: "i"}}, Assign: "set"},
					&ir.If{
						Cond: ir.NotNull{Var: "set"},
						Then: ir.Block{
							&ir.Call{Recv: "set", Method: "size", Assign: "sz"},
							&ir.Assign{Lhs: "sum", Rhs: ir.Opaque{Text: "sum+sz", Reads: []string{"sum", "sz"}}},
						},
					},
					&ir.Assign{Lhs: "i", Rhs: ir.Opaque{Text: "i+1", Reads: []string{"i"}}},
				},
			},
		},
	}
}
