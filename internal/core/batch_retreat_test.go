package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestBatchRetreatRestoresCounters hammers the single-partition batch
// fast path's retreat against concurrent conflicting holders. The
// samePart pre-pass claims mode by mode and, on a mid-batch conflict,
// must undo every earlier claim — counter slots AND summary words —
// before falling back to the one-pass batch machinery. A phantom
// conflict bit left behind (a summary word not decremented, a counter
// slot over-restored) would make this mechanism's summary permanently
// over-approximate, sending every later wildcard acquisition to the
// slow path or, worse, deadlocking it. Run under -race this also races
// the retreat against the wildcard holder's own claim/retreat cycle.
func TestBatchRetreatRestoresCounters(t *testing.T) {
	// φ width 64: the size mode conflicts with every key mode (put/size
	// never commute), giving it a conflict mask far past
	// summaryCutoffSlots — this mechanism maintains summary counters,
	// which is exactly the bookkeeping the retreat must restore.
	tbl := mapTable(t, 64, TableOptions{})
	s := NewSemantic(tbl)
	sm := sizeMode(tbl)
	if p := tbl.part[sm]; !tbl.summaryOn[p] {
		t.Fatal("test premise: the size mode's mechanism must maintain summary counters")
	}
	baseline := WaitersOutstanding()

	const goroutines = 8
	const iters = 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0, 1:
					// Same-partition key batch: the pre-pass claims the
					// first key, then retreats when the wildcard holder
					// blocks the second.
					a := keyMode(tbl, rng.Intn(64))
					b := keyMode(tbl, rng.Intn(64))
					// a may equal b: the batch then claims the slot twice
					// (two holds), and the two releases below restore both.
					s.AcquireBatch(a, b)
					s.Release(a)
					s.Release(b)
				case 2:
					// The wildcard: conflicts with every key slot, forcing
					// both directions of retreat (its own failed claims and
					// the key batches').
					s.Acquire(sm)
					s.Release(sm)
				default:
					// Intra-batch conflict (key vs size within one batch,
					// self-permitted via baked thresholds) plus a bounded
					// acquisition whose timeout path retreats as well.
					k := keyMode(tbl, rng.Intn(64))
					if k != sm {
						s.AcquireBatch(k, sm)
						s.Release(k)
						s.Release(sm)
					}
					if err := s.AcquireWithin(sm, time.Microsecond); err == nil {
						s.Release(sm)
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()

	if err := s.CheckQuiesced(); err != nil {
		t.Fatalf("counters not restored after batch-retreat hammer: %v", err)
	}
	if d := WaitersOutstanding() - baseline; d != 0 {
		t.Errorf("leaked %d waiter(s)", d)
	}
	// The summary must be exactly restored, not merely nonnegative: a
	// fresh wildcard acquisition must still take the fast path.
	st0 := s.Stats()
	s.Acquire(sm)
	s.Release(sm)
	if st := s.Stats(); st.FastPath != st0.FastPath+1 {
		t.Errorf("wildcard acquisition on quiesced instance went slow-path: before %+v after %+v", st0, st)
	}
}
