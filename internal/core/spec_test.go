package core

import "testing"

// TestSpecFig3b checks the Set specification against the paper's
// Example 2.3: add(7) and remove(7) do not commute; add(7) and
// remove(10) do.
func TestSpecFig3b(t *testing.T) {
	s := setSpec()
	if s.OpsCommute(NewOp("add", 7), NewOp("remove", 7)) {
		t.Error("add(7) and remove(7) must not commute")
	}
	if !s.OpsCommute(NewOp("add", 7), NewOp("remove", 10)) {
		t.Error("add(7) and remove(10) must commute")
	}
	if !s.OpsCommute(NewOp("add", 1), NewOp("add", 1)) {
		t.Error("add operations always commute")
	}
	if s.OpsCommute(NewOp("size"), NewOp("add", 3)) {
		t.Error("size() never commutes with add")
	}
	if s.OpsCommute(NewOp("clear"), NewOp("contains", 3)) {
		t.Error("clear() never commutes with contains")
	}
	if !s.OpsCommute(NewOp("size"), NewOp("contains", 3)) {
		t.Error("size() commutes with contains")
	}
}

func TestSpecSymmetry(t *testing.T) {
	s := setSpec()
	pairs := [][2]Op{
		{NewOp("add", 1), NewOp("remove", 2)},
		{NewOp("add", 1), NewOp("remove", 1)},
		{NewOp("size"), NewOp("add", 1)},
		{NewOp("contains", 5), NewOp("size")},
	}
	for _, p := range pairs {
		if s.OpsCommute(p[0], p[1]) != s.OpsCommute(p[1], p[0]) {
			t.Errorf("commutativity of (%s,%s) not symmetric", p[0], p[1])
		}
	}
}

func TestSpecDefaultNever(t *testing.T) {
	s := NewSpec("X", MethodSig{"a", 0}, MethodSig{"b", 0})
	if s.OpsCommute(NewOp("a"), NewOp("b")) {
		t.Error("unspecified pair must default to never-commute")
	}
}

func TestSpecMethodLookup(t *testing.T) {
	s := setSpec()
	m, ok := s.Method("add")
	if !ok || m.Arity != 1 {
		t.Errorf("Method(add) = %v, %v", m, ok)
	}
	if _, ok := s.Method("nope"); ok {
		t.Error("unknown method should not be found")
	}
	names := s.MethodNames()
	if len(names) != 5 || names[0] != "add" {
		t.Errorf("MethodNames = %v", names)
	}
}

func TestSpecValidate(t *testing.T) {
	if errs := setSpec().Validate(); len(errs) != 0 {
		t.Errorf("setSpec should validate cleanly: %v", errs)
	}
	if errs := mapSpec().Validate(); len(errs) != 0 {
		t.Errorf("mapSpec should validate cleanly: %v", errs)
	}
	bad := NewSpec("B", MethodSig{"f", 1}, MethodSig{"g", 1})
	bad.Commute("f", "g", ArgsNE(1, 0)) // index 1 out of range for f/1
	if errs := bad.Validate(); len(errs) == 0 {
		t.Error("out-of-range condition index should fail validation")
	}
}

func TestSpecDuplicateMethodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate method must panic")
		}
	}()
	NewSpec("D", MethodSig{"f", 0}, MethodSig{"f", 1})
}

func TestSpecUnknownMethodPanics(t *testing.T) {
	s := NewSpec("U", MethodSig{"f", 0})
	defer func() {
		if recover() == nil {
			t.Error("Commute with unknown method must panic")
		}
	}()
	s.Commute("f", "g", Always)
}

// TestSpecSwappedAsymmetricCond verifies swapped lookup with an
// asymmetric condition: commute("f","g", ArgsNE(1,0)) relates f's second
// argument to g's first; querying (g,f) must compare g's first against
// f's second.
func TestSpecSwappedAsymmetricCond(t *testing.T) {
	s := NewSpec("A", MethodSig{"f", 2}, MethodSig{"g", 1})
	s.Commute("f", "g", ArgsNE(1, 0))
	if !s.OpsCommute(NewOp("f", 0, 10), NewOp("g", 20)) {
		t.Error("f(0,10) vs g(20): 10≠20 → commute")
	}
	if s.OpsCommute(NewOp("g", 10), NewOp("f", 0, 10)) {
		t.Error("g(10) vs f(0,10): 10=10 → no commute (swapped)")
	}
	if !s.OpsCommute(NewOp("g", 11), NewOp("f", 0, 10)) {
		t.Error("g(11) vs f(0,10): 11≠10 → commute (swapped)")
	}
}
