package core

import (
	"math/rand"
	"testing"
)

// TestModeCacheFaithful: every interned selector returns exactly the
// mode the reference path (ModeForValues) constructs, for random values
// and every registered set of a representative table.
func TestModeCacheFaithful(t *testing.T) {
	tbl := mapTable(t, 8, TableOptions{})
	cache := tbl.Cache()
	keySet := SymSetOf(SymOpOf("get", VarArg("k")), SymOpOf("put", VarArg("k"), Star()), SymOpOf("remove", VarArg("k")))
	sizeSet := SymSetOf(SymOpOf("size"))
	rng := rand.New(rand.NewSource(1))

	keyID := cache.SetID(keySet)
	keyRef := tbl.Set(keySet)
	for trial := 0; trial < 200; trial++ {
		v := rng.Intn(64)
		want := keyRef.Mode(v)
		if got := cache.Mode1(keyID, v); got != want {
			t.Fatalf("Mode1(%d) = %d, want %d", v, got, want)
		}
		if got := cache.ModeAt(keyID, tbl.Phi().Abstract(v)); got != want {
			t.Fatalf("ModeAt(%d) = %d, want %d", v, got, want)
		}
		if got := keyRef.Mode1(v); got != want {
			t.Fatalf("SetRef.Mode1(%d) = %d, want %d", v, got, want)
		}
		ref := ModeForValues(keySet, tbl.Phi(), map[string]Value{"k": v})
		if interned := cache.Interned(want); interned.String() != ref.String() {
			t.Fatalf("Interned(%d) = %s, reference build = %s", want, interned, ref)
		}
		if m := cache.ModeFor(keySet, map[string]Value{"k": v}); m.String() != ref.String() {
			t.Fatalf("ModeFor = %s, reference = %s", m, ref)
		}
	}

	// Constant sets: the fixed-arity SetRef selectors accept them and
	// ignore the values (call sites share one selector shape).
	sizeRef := tbl.Set(sizeSet)
	want := sizeRef.Mode()
	if got := sizeRef.Mode1(99); got != want {
		t.Fatalf("SetRef.Mode1 on constant set = %d, want %d", got, want)
	}
	if got := sizeRef.Mode2(1, 2); got != want {
		t.Fatalf("SetRef.Mode2 on constant set = %d, want %d", got, want)
	}
	if got := cache.ModeAt(cache.SetID(sizeSet)); got != want {
		t.Fatalf("ModeAt on constant set = %d, want %d", got, want)
	}
}

// TestModeCacheArityPanics: the fixed-arity selectors refuse sets of the
// wrong shape instead of silently mis-indexing.
func TestModeCacheArityPanics(t *testing.T) {
	tbl := mapTable(t, 4, TableOptions{})
	keySet := SymSetOf(SymOpOf("get", VarArg("k")), SymOpOf("put", VarArg("k"), Star()), SymOpOf("remove", VarArg("k")))
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("SetID unknown", func() {
		tbl.Cache().SetID(SymSetOf(SymOpOf("get", ConstArg(42))))
	})
	mustPanic("Mode2 on 1-var set", func() { tbl.Set(keySet).Mode2(1, 2) })
	mustPanic("ModeAt arity", func() { tbl.Cache().ModeAt(tbl.Cache().SetID(keySet), 1, 2) })
}

// TestTxnCachedModeMemo: the transaction memo returns the same ModeID as
// the direct selector for hits, misses, and after round-robin eviction,
// and survives Reset (entries are keyed on immutable table state).
func TestTxnCachedModeMemo(t *testing.T) {
	tbl := mapTable(t, 8, TableOptions{})
	keySet := SymSetOf(SymOpOf("get", VarArg("k")), SymOpOf("put", VarArg("k"), Star()), SymOpOf("remove", VarArg("k")))
	ref := tbl.Set(keySet)
	tx := NewTxn()

	// More distinct values than memo slots forces eviction mid-loop.
	for round := 0; round < 3; round++ {
		for v := 0; v < 2*modeMemoSize; v++ {
			if got, want := tx.CachedMode1(ref, v), ref.Mode1(v); got != want {
				t.Fatalf("round %d: CachedMode1(%d) = %d, want %d", round, v, got, want)
			}
		}
	}
	tx.Reset()
	if got, want := tx.CachedMode1(ref, 5), ref.Mode1(5); got != want {
		t.Fatalf("after Reset: CachedMode1 = %d, want %d", got, want)
	}

	// Repeated same-value selection allocates nothing.
	tx2 := NewTxn()
	tx2.CachedMode1(ref, 7) // warm the memo
	if n := testing.AllocsPerRun(100, func() { tx2.CachedMode1(ref, 7) }); n != 0 {
		t.Errorf("CachedMode1 hit allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { ref.Mode1(7) }); n != 0 {
		t.Errorf("SetRef.Mode1 allocates %v per run, want 0", n)
	}
}

// TestTxnCachedMode2: the two-value memo distinguishes value order and
// set identity.
func TestTxnCachedMode2(t *testing.T) {
	spec := mapSpec()
	set := SymSetOf(SymOpOf("put", VarArg("a"), VarArg("b")))
	tbl := NewModeTable(spec, []SymSet{set}, TableOptions{Phi: NewPhi(4)})
	ref := tbl.Set(set)
	tx := NewTxn()
	for trial := 0; trial < 50; trial++ {
		a, b := trial%5, (trial*3)%7
		if got, want := tx.CachedMode2(ref, a, b), ref.Mode2(a, b); got != want {
			t.Fatalf("CachedMode2(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
	// (a,b) and (b,a) are distinct keys.
	if m1, m2 := tx.CachedMode2(ref, 1, 2), tx.CachedMode2(ref, 2, 1); m1 != ref.Mode2(1, 2) || m2 != ref.Mode2(2, 1) {
		t.Fatal("memo conflated value orders")
	}
}
