package core

import "fmt"

// Cond is a commutativity condition Π_{o,o'} (§5.2): a predicate over the
// argument vectors of a pair of operations such that, when it holds, the
// two operations commute. Conditions are used in two ways:
//
//   - concretely, Holds evaluates the condition on two runtime argument
//     vectors (used by tests and the reference checker);
//   - symbolically, Definitely decides whether the condition is guaranteed
//     for EVERY pair of runtime operations represented by two mode
//     operations (used to compute the commutativity function F_c, Fig 19).
//
// The symbolic evaluation is conservative: Definitely == false means
// "cannot prove commutativity", never "provably conflicting".
type Cond interface {
	// Holds evaluates the condition on concrete argument vectors: a are
	// the arguments of the first operation, b of the second.
	Holds(a, b []Value) bool
	// Definitely reports whether the condition is guaranteed to hold for
	// all pairs of concrete operations abstracted by the two mode
	// argument vectors under the hash φ.
	Definitely(a, b []ModeArg, phi Phi) bool
	// Swapped returns the condition with the roles of the two operations
	// exchanged, so that spec lookups are order-insensitive.
	Swapped() Cond
	fmt.Stringer
}

// condTrue is the always-commute condition ("true" in Fig 3b).
type condTrue struct{}

// Always is the condition under which two operations always commute.
var Always Cond = condTrue{}

func (condTrue) Holds(_, _ []Value) bool               { return true }
func (condTrue) Definitely(_, _ []ModeArg, _ Phi) bool { return true }
func (condTrue) Swapped() Cond                         { return Always }
func (condTrue) String() string                        { return "true" }

// condFalse is the never-commute condition ("false" in Fig 3b).
type condFalse struct{}

// Never is the condition under which two operations never (provably)
// commute.
var Never Cond = condFalse{}

func (condFalse) Holds(_, _ []Value) bool               { return false }
func (condFalse) Definitely(_, _ []ModeArg, _ Phi) bool { return false }
func (condFalse) Swapped() Cond                         { return Never }
func (condFalse) String() string                        { return "false" }

// condNE is the disequality condition v ≠ v' between argument I of the
// first operation and argument J of the second (e.g. add(v) and
// remove(v') commute when v ≠ v', Fig 3b).
type condNE struct{ i, j int }

// ArgsNE returns the condition "arg i of the first op ≠ arg j of the
// second op".
func ArgsNE(i, j int) Cond { return condNE{i, j} }

func (c condNE) Holds(a, b []Value) bool { return a[c.i] != b[c.j] }

func (c condNE) Definitely(a, b []ModeArg, phi Phi) bool {
	return modeArgsDisjoint(a[c.i], b[c.j], phi)
}

func (c condNE) Swapped() Cond  { return condNE{c.j, c.i} }
func (c condNE) String() string { return fmt.Sprintf("a%d!=b%d", c.i, c.j) }

// condEQ is the equality condition between argument I of the first
// operation and argument J of the second. (Useful for specs such as
// "put(k,v) commutes with put(k',v') when k=k' and v=v'"; rarely needed
// alone but provided for completeness of the algebra.)
type condEQ struct{ i, j int }

// ArgsEQ returns the condition "arg i of the first op == arg j of the
// second op".
func ArgsEQ(i, j int) Cond { return condEQ{i, j} }

func (c condEQ) Holds(a, b []Value) bool { return a[c.i] == b[c.j] }

func (c condEQ) Definitely(a, b []ModeArg, _ Phi) bool {
	// Only two identical constants are guaranteed equal; two equal
	// abstract values merely share a hash bucket.
	x, y := a[c.i], b[c.j]
	return x.Kind == ModeConst && y.Kind == ModeConst && x.Val == y.Val
}

func (c condEQ) Swapped() Cond  { return condEQ{c.j, c.i} }
func (c condEQ) String() string { return fmt.Sprintf("a%d==b%d", c.i, c.j) }

// condAnd is conjunction of conditions.
type condAnd struct{ cs []Cond }

// AndCond returns the conjunction of the given conditions.
func AndCond(cs ...Cond) Cond {
	if len(cs) == 0 {
		return Always
	}
	if len(cs) == 1 {
		return cs[0]
	}
	return condAnd{cs}
}

func (c condAnd) Holds(a, b []Value) bool {
	for _, s := range c.cs {
		if !s.Holds(a, b) {
			return false
		}
	}
	return true
}

func (c condAnd) Definitely(a, b []ModeArg, phi Phi) bool {
	for _, s := range c.cs {
		if !s.Definitely(a, b, phi) {
			return false
		}
	}
	return true
}

func (c condAnd) Swapped() Cond {
	out := make([]Cond, len(c.cs))
	for i, s := range c.cs {
		out[i] = s.Swapped()
	}
	return condAnd{out}
}

func (c condAnd) String() string {
	s := "(" + c.cs[0].String()
	for _, x := range c.cs[1:] {
		s += " && " + x.String()
	}
	return s + ")"
}

// condOr is disjunction of conditions.
type condOr struct{ cs []Cond }

// OrCond returns the disjunction of the given conditions.
func OrCond(cs ...Cond) Cond {
	if len(cs) == 0 {
		return Never
	}
	if len(cs) == 1 {
		return cs[0]
	}
	return condOr{cs}
}

func (c condOr) Holds(a, b []Value) bool {
	for _, s := range c.cs {
		if s.Holds(a, b) {
			return true
		}
	}
	return false
}

func (c condOr) Definitely(a, b []ModeArg, phi Phi) bool {
	// Sound: if one disjunct is guaranteed for all represented pairs,
	// so is the disjunction. (A disjunction may hold pairwise without
	// either disjunct holding uniformly; we conservatively miss that.)
	for _, s := range c.cs {
		if s.Definitely(a, b, phi) {
			return true
		}
	}
	return false
}

func (c condOr) Swapped() Cond {
	out := make([]Cond, len(c.cs))
	for i, s := range c.cs {
		out[i] = s.Swapped()
	}
	return condOr{out}
}

func (c condOr) String() string {
	s := "(" + c.cs[0].String()
	for _, x := range c.cs[1:] {
		s += " || " + x.String()
	}
	return s + ")"
}

// ShiftCond returns the condition with every argument index of the
// first operation shifted by d1 and of the second by d2. It is used when
// wrapping ADTs into a global ADT (§3.4): the wrapped operation gains
// the instance as an extra leading argument, so the original condition's
// indices move right by one.
func ShiftCond(c Cond, d1, d2 int) Cond {
	switch x := c.(type) {
	case condTrue, condFalse:
		return c
	case condNE:
		return condNE{x.i + d1, x.j + d2}
	case condEQ:
		return condEQ{x.i + d1, x.j + d2}
	case condLT:
		return condLT{x.i + d1, x.j + d2}
	case condGTView:
		return condGTView{x.i + d1, x.j + d2}
	case condAnd:
		out := make([]Cond, len(x.cs))
		for i, s := range x.cs {
			out[i] = ShiftCond(s, d1, d2)
		}
		return condAnd{out}
	case condOr:
		out := make([]Cond, len(x.cs))
		for i, s := range x.cs {
			out[i] = ShiftCond(s, d1, d2)
		}
		return condOr{out}
	default:
		panic(fmt.Sprintf("core: ShiftCond: unknown condition %T", c))
	}
}

// modeArgsDisjoint reports whether two mode arguments are guaranteed to
// denote disjoint sets of runtime values:
//
//   - two constants are disjoint iff they differ;
//   - a constant v and an abstract value β are disjoint iff φ(v) ≠ β
//     (φ buckets are disjoint, so v ∈ bucket φ(v) only);
//   - two abstract values are disjoint iff they differ;
//   - * overlaps everything.
func modeArgsDisjoint(x, y ModeArg, phi Phi) bool {
	switch {
	case x.Kind == ModeStar || y.Kind == ModeStar:
		return false
	case x.Kind == ModeConst && y.Kind == ModeConst:
		return x.Val != y.Val
	case x.Kind == ModeConst && y.Kind == ModeAbs:
		return phi.Abstract(x.Val) != y.Abs
	case x.Kind == ModeAbs && y.Kind == ModeConst:
		return x.Abs != phi.Abstract(y.Val)
	default: // both abstract
		return x.Abs != y.Abs
	}
}
