package core

import (
	"testing"
)

// fig19Table compiles the exact configuration of Fig 19: the Set ADT of
// Fig 3, symbolic sets {add(*)}, {add(5)} and {add(i),remove(j)}, and a
// hash φ onto two abstract values with φ(5) = α1.
func fig19Table(t *testing.T, opts TableOptions) *ModeTable {
	t.Helper()
	opts.Phi = NewFixedPhi(2, 1, map[Value]int{5: 0})
	sets := []SymSet{
		SymSetOf(SymOpOf("add", Star())),
		SymSetOf(SymOpOf("add", ConstArg(5))),
		SymSetOf(SymOpOf("add", VarArg("i")), SymOpOf("remove", VarArg("j"))),
	}
	return NewModeTable(setSpec(), sets, opts)
}

// TestFig19 reproduces the commutativity function of Fig 19 entry by
// entry (experiment E6 in DESIGN.md).
func TestFig19(t *testing.T) {
	tbl := fig19Table(t, TableOptions{DisableMerging: true})
	if len(tbl.Modes()) != 6 {
		t.Fatalf("got %d modes, want 6: %v", len(tbl.Modes()), tbl.Modes())
	}
	idx := make(map[string]ModeID)
	for i, m := range tbl.Modes() {
		idx[m.Key()] = ModeID(i)
	}
	const (
		addStar = "{add(*)}"
		add5    = "{add(5)}"
		a1r1    = "{add(α1),remove(α1)}"
		a1r2    = "{add(α1),remove(α2)}"
		a2r1    = "{add(α2),remove(α1)}"
		a2r2    = "{add(α2),remove(α2)}"
	)
	// The full symmetric matrix of Fig 19 (upper triangle as printed).
	want := map[[2]string]bool{
		{addStar, addStar}: true,
		{addStar, add5}:    true,
		{addStar, a1r1}:    false,
		{addStar, a1r2}:    false,
		{addStar, a2r1}:    false,
		{addStar, a2r2}:    false,
		{add5, add5}:       true,
		{add5, a1r1}:       false,
		{add5, a1r2}:       true,
		{add5, a2r1}:       false,
		{add5, a2r2}:       true,
		{a1r1, a1r1}:       false,
		{a1r1, a1r2}:       false,
		{a1r1, a2r1}:       false,
		{a1r1, a2r2}:       true,
		{a1r2, a1r2}:       true,
		{a1r2, a2r1}:       false,
		{a1r2, a2r2}:       false,
		{a2r1, a2r1}:       true,
		{a2r1, a2r2}:       false,
		{a2r2, a2r2}:       false,
	}
	for pair, w := range want {
		a, ok1 := idx[pair[0]]
		b, ok2 := idx[pair[1]]
		if !ok1 || !ok2 {
			t.Fatalf("mode missing: %v present=%v", pair, idx)
		}
		if got := tbl.Commute(a, b); got != w {
			t.Errorf("F_c(%s, %s) = %v, want %v", pair[0], pair[1], got, w)
		}
		if got := tbl.Commute(b, a); got != w {
			t.Errorf("F_c(%s, %s) = %v, want %v (symmetry)", pair[1], pair[0], got, w)
		}
	}
}

// TestFig19NoMergeableModes: the six Fig 19 modes are pairwise
// distinguishable, so merging must keep all six.
func TestFig19NoMergeableModes(t *testing.T) {
	tbl := fig19Table(t, TableOptions{})
	if len(tbl.Modes()) != 6 {
		t.Errorf("merging changed Fig 19 mode count: %d", len(tbl.Modes()))
	}
	if got := tbl.CanonicalCount(); got != 6 {
		t.Errorf("Fig 19 modes are pairwise distinguishable; canonical count = %d, want 6", got)
	}
	if tbl.NumMechanisms() != 1 {
		t.Errorf("Fig 19 conflict graph is connected; want 1 mechanism, got %d", tbl.NumMechanisms())
	}
}

// TestDynamicModeSelection follows §5.1's lowering of lock(SY_v): the
// runtime values of i and j choose the mode through φ.
func TestDynamicModeSelection(t *testing.T) {
	tbl := fig19Table(t, TableOptions{})
	set := SymSetOf(SymOpOf("add", VarArg("i")), SymOpOf("remove", VarArg("j")))
	ref := tbl.Set(set)
	if got := ref.Vars(); len(got) != 2 || got[0] != "i" || got[1] != "j" {
		t.Fatalf("Vars = %v", got)
	}
	// φ(5)=α1, default bucket is α2.
	m := ref.Mode(5, 9)
	if got := tbl.Mode(m).Key(); got != "{add(α1),remove(α2)}" {
		t.Errorf("Mode(5,9) = %s", got)
	}
	m = ref.ModeEnv(map[string]Value{"i": 9, "j": 5})
	if got := tbl.Mode(m).Key(); got != "{add(α2),remove(α1)}" {
		t.Errorf("ModeEnv(i=9,j=5) = %s", got)
	}
	cref := tbl.Set(SymSetOf(SymOpOf("add", Star())))
	if got := tbl.Mode(cref.Mode()).Key(); got != "{add(*)}" {
		t.Errorf("constant set mode = %s", got)
	}
}

func TestSetRefWrongArity(t *testing.T) {
	tbl := fig19Table(t, TableOptions{})
	ref := tbl.Set(SymSetOf(SymOpOf("add", VarArg("i")), SymOpOf("remove", VarArg("j"))))
	defer func() {
		if recover() == nil {
			t.Error("wrong value count must panic")
		}
	}()
	ref.Mode(1)
}

func TestUnregisteredSetPanics(t *testing.T) {
	tbl := fig19Table(t, TableOptions{})
	defer func() {
		if recover() == nil {
			t.Error("unregistered set must panic")
		}
	}()
	tbl.Set(SymSetOf(SymOpOf("size")))
}

// TestIndistinguishableMerging: under an all-Never spec every mode
// conflicts with every mode, so all rows are identical and the table
// collapses to a single exclusive mode (§5.3, opt. 1).
func TestIndistinguishableMerging(t *testing.T) {
	spec := NewSpec("X", MethodSig{"f", 1}, MethodSig{"g", 1})
	sets := []SymSet{
		SymSetOf(SymOpOf("f", VarArg("i"))),
		SymSetOf(SymOpOf("g", VarArg("j"))),
	}
	tbl := NewModeTable(spec, sets, TableOptions{Phi: NewPhi(4)})
	if len(tbl.Modes()) != 8 {
		t.Fatalf("instantiated modes = %d, want 8", len(tbl.Modes()))
	}
	if got := tbl.CanonicalCount(); got != 1 {
		t.Errorf("canonical count = %d, want 1 (all indistinguishable)", got)
	}
	if tbl.Commute(0, 0) {
		t.Error("the merged mode must be exclusive")
	}
	// The shared counter means any two holders conflict, even of
	// different instantiated modes.
	s := NewSemantic(tbl)
	s.Acquire(0)
	if s.TryAcquire(3) {
		t.Error("modes sharing the exclusive counter must conflict")
	}
	s.Release(0)
}

// TestPartitioning: with per-key get and put sets over two buckets the
// conflict graph splits into one component per bucket → two mechanisms
// (§5.2 lock partitioning).
func TestPartitioning(t *testing.T) {
	sets := []SymSet{
		SymSetOf(SymOpOf("get", VarArg("k"))),
		SymSetOf(SymOpOf("put", VarArg("k"), Star())),
	}
	tbl := NewModeTable(mapSpec(), sets, TableOptions{Phi: NewPhi(2)})
	if got := tbl.NumMechanisms(); got != 2 {
		t.Errorf("mechanisms = %d, want 2", got)
	}
	off := NewModeTable(mapSpec(), sets, TableOptions{Phi: NewPhi(2), DisablePartitioning: true})
	if got := off.NumMechanisms(); got != 1 {
		t.Errorf("with partitioning disabled mechanisms = %d, want 1", got)
	}
}

// TestFreePartition: a mode that commutes with everything (including
// itself) needs no mechanism at all.
func TestFreePartition(t *testing.T) {
	spec := NewSpec("R", MethodSig{"get", 1})
	spec.Commute("get", "get", Always)
	sets := []SymSet{SymSetOf(SymOpOf("get", Star()))}
	tbl := NewModeTable(spec, sets, TableOptions{Phi: NewPhi(2)})
	if tbl.NumMechanisms() != 0 {
		t.Errorf("read-only table should need 0 mechanisms, got %d", tbl.NumMechanisms())
	}
	// Acquiring the free mode must be a no-op that never blocks.
	s := NewSemantic(tbl)
	m := tbl.Set(sets[0]).Mode()
	for i := 0; i < 3; i++ {
		s.Acquire(m)
	}
	s.Release(m)
}

// TestCoarsening: MaxModes caps raw mode count by halving φ (§5.3 opt 3).
func TestCoarsening(t *testing.T) {
	sets := []SymSet{
		SymSetOf(SymOpOf("put", VarArg("a"), VarArg("b"))),
	}
	tbl := NewModeTable(mapSpec(), sets, TableOptions{Phi: NewPhi(64), MaxModes: 4})
	if got := tbl.Phi().N(); got != 2 {
		t.Errorf("coarsened φ has %d buckets, want 2 (2^2 = 4 ≤ MaxModes)", got)
	}
	if len(tbl.RawModes()) > 4 {
		t.Errorf("raw modes = %d exceeds MaxModes", len(tbl.RawModes()))
	}
}

func TestCoversOp(t *testing.T) {
	tbl := fig19Table(t, TableOptions{})
	set := SymSetOf(SymOpOf("add", VarArg("i")), SymOpOf("remove", VarArg("j")))
	m := tbl.Set(set).Mode(5, 9) // {add(α1),remove(α2)}
	if !tbl.CoversOp(m, NewOp("add", 5)) {
		t.Error("add(5) must be covered (φ(5)=α1)")
	}
	if !tbl.CoversOp(m, NewOp("remove", 9)) {
		t.Error("remove(9) must be covered (bucket α2)")
	}
	if tbl.CoversOp(m, NewOp("remove", 5)) {
		t.Error("remove(5) in bucket α1 must not be covered by remove(α2)")
	}
	if tbl.CoversOp(m, NewOp("size")) {
		t.Error("size() must not be covered")
	}
}

// TestTableSoundness: for every pair of canonical modes marked
// commutative, every pair of concrete operations drawn from a small
// domain and covered by the respective modes must commute per the spec.
func TestTableSoundness(t *testing.T) {
	tbl := fig19Table(t, TableOptions{})
	phi := tbl.Phi()
	domain := []Value{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	var concrete []Op
	for _, m := range []string{"add", "remove", "contains"} {
		for _, v := range domain {
			concrete = append(concrete, NewOp(m, v))
		}
	}
	concrete = append(concrete, NewOp("size"), NewOp("clear"))
	spec := tbl.Spec
	for i := range tbl.Modes() {
		for j := range tbl.Modes() {
			if !tbl.Commute(ModeID(i), ModeID(j)) {
				continue
			}
			for _, oa := range concrete {
				if !tbl.Modes()[i].Covers(oa, phi) {
					continue
				}
				for _, ob := range concrete {
					if !tbl.Modes()[j].Covers(ob, phi) {
						continue
					}
					if !spec.OpsCommute(oa, ob) {
						t.Fatalf("F_c(%s,%s)=true but %s and %s do not commute",
							tbl.Modes()[i], tbl.Modes()[j], oa, ob)
					}
				}
			}
		}
	}
}
