package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestBatchLockEquivalenceRandom is the fused-prologue property: for
// random batches over distinct instances, Txn.LockBatch leaves the
// transaction and the instances in exactly the state the equivalent
// sequence of Txn.Lock calls leaves them in — identical held counts,
// identical per-mode holder counts, and identical acquisition logs
// (modulo the instance-id renaming between the two replicas). The batch
// is handed over shuffled to exercise the internal (rank, id) sort.
func TestBatchLockEquivalenceRandom(t *testing.T) {
	tbl := mapTable(t, 8, TableOptions{})
	const nInst = 5
	for seed := int64(0); seed < 80; seed++ {
		rng := rand.New(rand.NewSource(seed))

		// Two identically-shaped replicas of the instance universe: A is
		// locked with LockBatch, B with the unfused Lock sequence.
		semsA := make([]*Semantic, nInst)
		semsB := make([]*Semantic, nInst)
		for i := range semsA {
			semsA[i] = NewSemantic(tbl)
		}
		for i := range semsB {
			semsB[i] = NewSemantic(tbl)
		}
		ranks := make([]int, nInst) // non-decreasing, so id order agrees across replicas
		for i := 1; i < nInst; i++ {
			ranks[i] = ranks[i-1] + rng.Intn(2)
		}

		// Random batch: distinct instances, random modes, an occasional
		// nil entry (the guarded-variable case Lock also absorbs).
		type pick struct {
			inst int // -1 = nil instance
			mode ModeID
		}
		var picks []pick
		for _, i := range rng.Perm(nInst)[:1+rng.Intn(nInst)] {
			picks = append(picks, pick{inst: i, mode: keyMode(tbl, rng.Intn(16))})
		}
		if rng.Intn(3) == 0 {
			picks = append(picks, pick{inst: -1})
		}

		batch := make([]BatchLock, len(picks))
		for i, p := range picks {
			if p.inst >= 0 {
				batch[i] = BatchLock{Sem: semsA[p.inst], Mode: p.mode, Rank: ranks[p.inst]}
			}
		}
		txA := NewCheckedTxn()
		txA.LockBatch(batch...)

		// Reference: the same picks through Txn.Lock, pre-sorted the way
		// OS2PL requires (LockBatch sorts internally; Lock does not).
		ordered := append([]pick(nil), picks...)
		for i := 1; i < len(ordered); i++ {
			for j := i; j > 0; j-- {
				a, b := ordered[j], ordered[j-1]
				ra, rb := -1, -1
				var ia, ib uint64
				if a.inst >= 0 {
					ra, ia = ranks[a.inst], semsB[a.inst].ID()
				}
				if b.inst >= 0 {
					rb, ib = ranks[b.inst], semsB[b.inst].ID()
				}
				if ra < rb || (ra == rb && ia < ib) {
					ordered[j], ordered[j-1] = b, a
				} else {
					break
				}
			}
		}
		txB := NewCheckedTxn()
		for _, p := range ordered {
			if p.inst < 0 {
				txB.Lock(nil, 0, 0)
			} else {
				txB.Lock(semsB[p.inst], p.mode, ranks[p.inst])
			}
		}

		if txA.HeldCount() != txB.HeldCount() {
			t.Fatalf("seed %d: held %d (batch) != %d (sequence)", seed, txA.HeldCount(), txB.HeldCount())
		}
		for i := range semsA {
			for _, p := range picks {
				if p.inst < 0 {
					continue
				}
				if ha, hb := semsA[i].Holders(p.mode), semsB[i].Holders(p.mode); ha != hb {
					t.Fatalf("seed %d: inst %d mode %d holders %d (batch) != %d (sequence)", seed, i, p.mode, ha, hb)
				}
			}
		}
		logA, logB := txA.Acquisitions(), txB.Acquisitions()
		if len(logA) != len(logB) {
			t.Fatalf("seed %d: log length %d != %d", seed, len(logA), len(logB))
		}
		// Identical modulo the A→B instance renaming (ids differ between
		// replicas but creation order, and hence within-rank order, agrees).
		idMap := make(map[uint64]uint64, nInst)
		for i := range semsA {
			idMap[semsA[i].ID()] = semsB[i].ID()
		}
		for i := range logA {
			a, b := logA[i], logB[i]
			if a.Rank != b.Rank || a.Mode != b.Mode || idMap[a.ID] != b.ID {
				t.Fatalf("seed %d: log[%d] = %+v (batch) vs %+v (sequence)", seed, i, a, b)
			}
		}

		txA.UnlockAll()
		txB.UnlockAll()
		for i := range semsA {
			if semsA[i].OutstandingHolds() != 0 || semsB[i].OutstandingHolds() != 0 {
				t.Fatalf("seed %d: instance %d left holders after UnlockAll", seed, i)
			}
		}
	}
}

// TestAcquireBatchEquivalenceRandom: a multi-mode batched acquisition on
// ONE instance (the fused same-instance run) leaves exactly the holder
// counts the sequential Acquire calls leave, for random mode multisets.
func TestAcquireBatchEquivalenceRandom(t *testing.T) {
	tbl := mapTable(t, 8, TableOptions{})
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		modes := make([]ModeID, 1+rng.Intn(4))
		for i := range modes {
			if rng.Intn(4) == 0 {
				modes[i] = sizeMode(tbl)
			} else {
				modes[i] = keyMode(tbl, rng.Intn(16))
			}
		}
		// A mode multiset is only a valid single-instance batch when its
		// members commute pairwise (a fused prologue's modes come from
		// one transaction, which may not conflict with itself).
		ok := true
		for i := range modes {
			for j := i + 1; j < len(modes); j++ {
				if !tbl.Commute(modes[i], modes[j]) {
					ok = false
				}
			}
		}
		if !ok {
			continue
		}
		sa, sb := NewSemantic(tbl), NewSemantic(tbl)
		sa.AcquireBatch(modes...)
		for _, m := range modes {
			sb.Acquire(m)
		}
		for _, m := range modes {
			if ha, hb := sa.Holders(m), sb.Holders(m); ha != hb {
				t.Fatalf("seed %d: modes %v: holders(%d) %d (batch) != %d (sequence)", seed, modes, m, ha, hb)
			}
		}
		for _, m := range modes {
			sa.Release(m)
			sb.Release(m)
		}
		if sa.OutstandingHolds() != 0 || sb.OutstandingHolds() != 0 {
			t.Fatalf("seed %d: leftover holds after release", seed)
		}
	}
}

// TestBatchSelfConflictSameInstance: a fused run whose modes conflict
// pairwise must still succeed — the claims belong to one transaction, so
// the batch's own claims are not conflicts against itself (the threshold
// generalizes the single-mode "own slot ≤ 1" rule).
func TestBatchSelfConflictSameInstance(t *testing.T) {
	tbl := mapTable(t, 1, TableOptions{}) // n=1: key modes conflict with size
	km, sm := keyMode(tbl, 7), sizeMode(tbl)
	if tbl.Commute(km, sm) {
		t.Fatal("test premise: key and size modes must conflict")
	}
	s := NewSemantic(tbl)
	done := make(chan struct{})
	go func() {
		s.AcquireBatch(km, sm)
		s.Release(km)
		s.Release(sm)
		close(done)
	}()
	<-done
	if s.OutstandingHolds() != 0 {
		t.Error("leftover holds")
	}
}

// TestBatchLockRace: concurrent fused prologues provide mutual exclusion
// exactly as sequential locks do. Each goroutine batches a conflicting
// (exclusive) acquisition over two instances and mutates unsynchronized
// shared state; the race detector plus an occupancy counter catch any
// exclusion failure. Run with -race.
func TestBatchLockRace(t *testing.T) {
	tbl := mapTable(t, 1, TableOptions{})
	km, sm := keyMode(tbl, 3), sizeMode(tbl)
	a, b := NewSemantic(tbl), NewSemantic(tbl)
	var inside, violations atomic.Int32
	shared := 0 // unsynchronized on purpose: -race verifies the exclusion
	var wg sync.WaitGroup
	const workers, iters = 8, 400
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tx := NewTxn()
				// Both modes conflict with each other's class, so every
				// pair of these batches conflicts on both instances.
				if w%2 == 0 {
					tx.LockBatch(
						BatchLock{Sem: a, Mode: km, Rank: 0},
						BatchLock{Sem: b, Mode: sm, Rank: 1},
					)
				} else {
					tx.Lock(a, sm, 0)
					tx.Lock(b, km, 1)
				}
				if inside.Add(1) != 1 {
					violations.Add(1)
				}
				shared++
				inside.Add(-1)
				tx.UnlockAll()
			}
		}(w)
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d mutual-exclusion violations between fused and sequential prologues", v)
	}
	if shared != workers*iters {
		t.Fatalf("shared = %d, want %d (lost updates)", shared, workers*iters)
	}
	if a.OutstandingHolds() != 0 || b.OutstandingHolds() != 0 {
		t.Error("leftover holds")
	}
}

// TestBatchLockSkipsHeldAndNil: LockBatch absorbs nil constituents and
// instances the transaction already holds, exactly as Lock does (Fig 5's
// LOCAL_SET test applies per instance, before the batched acquisition).
func TestBatchLockSkipsHeldAndNil(t *testing.T) {
	tbl, km, sm := txnFixture(t)
	s1, s2 := NewSemantic(tbl), NewSemantic(tbl)
	tx := NewCheckedTxn()
	tx.Lock(s1, km, 0)
	tx.LockBatch(
		BatchLock{Sem: nil},
		BatchLock{Sem: s1, Mode: sm, Rank: 0}, // already held: skipped whole
		BatchLock{Sem: s2, Mode: km, Rank: 1},
	)
	if got := tx.HeldCount(); got != 2 {
		t.Errorf("held = %d, want 2", got)
	}
	if got := s1.Holders(sm); got != 0 {
		t.Errorf("held instance re-acquired in batch: holders(sm) = %d", got)
	}
	tx.UnlockAll()
}
