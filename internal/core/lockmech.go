package core

import (
	"sync"
	"sync/atomic"
)

// instanceIDs hands out unique identifiers for ADT instances; the ids
// realize the paper's unique(x) used for dynamic lock ordering within an
// equivalence class (Fig 12) and for the OS2PL order on instances.
var instanceIDs atomic.Uint64

// LockStats are cumulative acquisition statistics of one instance,
// summed over its mechanisms: FastPath counts acquisitions that
// succeeded on the optimistic counter scan (Fig 20 lines 3–4), Slow
// counts acquisitions that fell back to the internal lock, and Waits
// counts the times an acquirer actually slept on a conflict.
type LockStats struct {
	FastPath uint64
	Slow     uint64
	Waits    uint64
}

// Semantic is the per-ADT-instance semantic lock: the realization of the
// synchronization API of §2.2 (lock / unlockAll) for one ADT instance.
// It holds one mechanism per partition of the class's mode table (§5.2).
//
// A Semantic guarantees: no two transactions concurrently hold modes a
// and b with F_c(a,b) = false. Acquire blocks until that invariant can be
// preserved. Deadlock-freedom is the transaction layer's responsibility
// (OS2PL ordering); a single Acquire never blocks on a mode held by its
// own transaction because transactions never lock the same instance
// twice (LOCAL_SET, §3.1).
type Semantic struct {
	table *ModeTable
	mechs []mechanism
	id    uint64

	// DisableFastPath forces every acquisition through the internal
	// lock, skipping the optimistic counter scan of Fig 20 lines 3–4 —
	// ablation A4.
	DisableFastPath bool
}

// NewSemantic creates the semantic lock for one ADT instance of the class
// compiled into table.
func NewSemantic(table *ModeTable) *Semantic {
	s := &Semantic{
		table: table,
		mechs: make([]mechanism, table.NumMechanisms()),
		id:    instanceIDs.Add(1),
	}
	for i := range s.mechs {
		s.mechs[i].init(table.partSizes[i])
	}
	return s
}

// Table returns the mode table the lock was built from.
func (s *Semantic) Table() *ModeTable { return s.table }

// ID returns the instance's unique identifier (the paper's unique(x)).
func (s *Semantic) ID() uint64 { return s.id }

// Acquire blocks until the transaction may hold mode m, then records one
// holder of m. Callers use Txn.Lock rather than calling this directly.
func (s *Semantic) Acquire(m ModeID) {
	p := s.table.part[m]
	if p < 0 {
		return // mode conflicts with nothing; no mechanism needed
	}
	s.mechs[p].acquire(s.table.localIdx[m], s.table.conflict[m], s.DisableFastPath)
}

// TryAcquire attempts to acquire mode m without blocking; it reports
// whether the acquisition succeeded.
func (s *Semantic) TryAcquire(m ModeID) bool {
	p := s.table.part[m]
	if p < 0 {
		return true
	}
	return s.mechs[p].tryAcquire(s.table.localIdx[m], s.table.conflict[m])
}

// Release undoes one Acquire of mode m.
func (s *Semantic) Release(m ModeID) {
	p := s.table.part[m]
	if p < 0 {
		return
	}
	s.mechs[p].release(s.table.localIdx[m])
}

// Stats returns the instance's cumulative acquisition statistics.
func (s *Semantic) Stats() LockStats {
	var out LockStats
	for i := range s.mechs {
		out.FastPath += s.mechs[i].fastPath.Load()
		out.Slow += s.mechs[i].slow.Load()
		out.Waits += s.mechs[i].waits.Load()
	}
	return out
}

// Holders returns the current holder count of mode m (test hook).
func (s *Semantic) Holders(m ModeID) int32 {
	p := s.table.part[m]
	if p < 0 {
		return 0
	}
	return s.mechs[p].counts[s.table.localIdx[m]].Load()
}

// mechanism is one independent lock mechanism (Fig 20): an atomic counter
// per locking mode plus an internal lock used only to block and wake
// waiters. The acquisition protocol is increment-then-scan (Dekker
// style): a thread first makes its own claim visible, then scans the
// conflicting counters; under sequential consistency two conflicting
// acquirers cannot both miss each other, so at most the false-conflict
// case (both back off and retry serialized by the internal lock) occurs.
type mechanism struct {
	mu      sync.Mutex
	cond    *sync.Cond
	waiters atomic.Int32
	counts  []atomic.Int32

	fastPath atomic.Uint64
	slow     atomic.Uint64
	waits    atomic.Uint64
}

func (m *mechanism) init(nModes int) {
	m.counts = make([]atomic.Int32, nModes)
	m.cond = sync.NewCond(&m.mu)
}

// conflicts reports whether any conflicting counter exceeds its
// threshold. The caller must already have incremented its own counter
// (thresholds account for that).
func (m *mechanism) conflicts(conf []conflictRef) bool {
	for _, c := range conf {
		if m.counts[c.slot].Load() > c.threshold {
			return true
		}
	}
	return false
}

func (m *mechanism) tryAcquire(slot int, conf []conflictRef) bool {
	m.counts[slot].Add(1)
	if !m.conflicts(conf) {
		return true
	}
	m.counts[slot].Add(-1)
	m.wakeWaiters()
	return false
}

func (m *mechanism) acquire(slot int, conf []conflictRef, noFastPath bool) {
	if !noFastPath {
		// Fast path (Fig 20 lines 3–4, adapted): claim, scan, retreat on
		// conflict. A couple of bounded retries absorb transient claims
		// by other threads that are themselves about to retreat.
		for attempt := 0; attempt < 2; attempt++ {
			if m.tryAcquire(slot, conf) {
				m.fastPath.Add(1)
				return
			}
		}
	}
	// Slow path: serialize claim-and-scan through the internal lock and
	// sleep on the condition variable while conflicts persist. waiters is
	// raised before the scan so that a releaser's decrement-then-check
	// either is seen by our scan or sees our waiter registration.
	m.slow.Add(1)
	m.mu.Lock()
	m.waiters.Add(1)
	for {
		m.counts[slot].Add(1)
		if !m.conflicts(conf) {
			m.waiters.Add(-1)
			m.mu.Unlock()
			return
		}
		m.counts[slot].Add(-1)
		m.waits.Add(1)
		m.cond.Wait()
	}
}

func (m *mechanism) release(slot int) {
	m.counts[slot].Add(-1)
	m.wakeWaiters()
}

// wakeWaiters broadcasts if any waiter might be blocked. The waiter
// increments waiters before re-scanning under mu, and we load waiters
// after our decrement, so either the waiter's scan sees the decrement or
// this load sees the waiter — a lost wakeup is impossible.
func (m *mechanism) wakeWaiters() {
	if m.waiters.Load() > 0 {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}
