package core

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/padded"
)

// instanceIDs hands out unique identifiers for ADT instances; the ids
// realize the paper's unique(x) used for dynamic lock ordering within an
// equivalence class (Fig 12) and for the OS2PL order on instances.
var instanceIDs atomic.Uint64

// LockStats are cumulative acquisition statistics of one instance,
// summed over its mechanisms: FastPath counts acquisitions that
// succeeded on the optimistic counter scan (Fig 20 lines 3–4), Slow
// counts acquisitions that fell back to the internal lock, and Waits
// counts the times an acquirer actually slept on a conflict.
type LockStats struct {
	FastPath uint64
	Slow     uint64
	Waits    uint64
	// Batches counts batched acquisitions — one per mechanism group of
	// an AcquireBatch call, already included in FastPath/Slow, so
	// FastPath+Slow-Batches recovers the single-mode acquisition count.
	Batches uint64
	// Stalls counts bounded acquisitions (AcquireWithin) that exhausted
	// their patience and returned a StallError.
	Stalls uint64
	// WaitNanos is the cumulative measured blocking time of slow-path
	// waiters. A waiter contributes only when it carried a timestamp —
	// the instance was Watchdog-watched, or SetWaitTiming(true) was in
	// effect, when it parked; otherwise its wait is not sampled.
	WaitNanos int64
	// OptimisticHits counts optimistic executions (Txn.TryOptimistic)
	// whose end-of-section validation on this instance succeeded;
	// OptimisticRetries counts validations that failed here — a
	// conflicting mode was acquired inside the read window — discarding
	// a completed body and forcing the section to re-run through the
	// pessimistic prologue. OptimisticRefusals counts observations
	// turned away before any body ran: a conflicting holder was visible
	// at Observe time, or the mechanism cannot validate at all (v1, no
	// version counters). A refusal wastes no work, so it is deliberately
	// NOT a retry and does not feed the adaptive gate — counting it as a
	// failure would let the pessimistic fallback a gate closure triggers
	// keep the gate closed (every fallback holder refuses the optimists
	// behind it, which reads as a high "failure" rate).
	OptimisticHits     uint64
	OptimisticRetries  uint64
	OptimisticRefusals uint64
}

// waitSampling globally enables the per-waiter wait timestamps (and
// with them LockStats.WaitNanos) on instances that no Watchdog watches.
// Off by default: the timestamp costs a time.Now() per slow-path entry,
// which only telemetry consumers should pay for.
var waitSampling atomic.Bool

// SetWaitTiming (internal/core/tuning.go) flips this switch; it also
// records the enable instant so waiters parked before the flip settle
// with a lower-bound wait instead of none at all.

// Semantic is the per-ADT-instance semantic lock: the realization of the
// synchronization API of §2.2 (lock / unlockAll) for one ADT instance.
// It holds one mechanism per partition of the class's mode table (§5.2).
//
// A Semantic guarantees: no two transactions concurrently hold modes a
// and b with F_c(a,b) = false. Acquire blocks until that invariant can be
// preserved. Deadlock-freedom is the transaction layer's responsibility
// (OS2PL ordering); a single Acquire never blocks on a mode held by its
// own transaction because transactions never lock the same instance
// twice (LOCAL_SET, §3.1).
//
// Two mechanism generations coexist: v2 (cache-line-padded counters,
// word-summary conflict scan, targeted wakeups, adaptive fast-path
// retries) is the default; the original Fig 20 mechanism (shared-line
// counters, O(conflicting modes) scan, broadcast wakeups) remains
// available behind DisableMechV2 as ablation A5.
type Semantic struct {
	table *ModeTable
	mechs []mechV2
	v1    []mechanism
	id    uint64

	// DisableFastPath forces every acquisition through the internal
	// lock, skipping the optimistic counter scan of Fig 20 lines 3–4 —
	// ablation A4.
	DisableFastPath bool
	// DisableMechV2 routes acquisitions through the original Fig 20
	// mechanism — ablation A5. Set it before the first Acquire (the two
	// generations keep separate counters). The v1 mechanism has no
	// version counters, so optimistic observation reports not-ok and
	// every TryOptimistic on the instance falls back pessimistically.
	DisableMechV2 bool

	// Optimistic-read outcome counters and the adaptive gate
	// (Txn.TryOptimistic). optHits/optRetries are the cumulative
	// validation outcomes reported in LockStats; the three gate cells
	// implement the windowed failure-rate hysteresis of
	// optimisticAllowed/recordValidation, parameterized by optParams —
	// the packed, runtime-tunable gate quadruple (see OptGateParams).
	// All padded: they sit on the section hot path of read-mostly
	// workloads.
	optHits     padded.Uint64
	optRetries  padded.Uint64
	optRefused  padded.Uint64 // observe-time turn-aways; never enter the gate window
	optGate     padded.Uint64 // 0 = enabled; n>0 = pessimistic runs left before the next probe
	optWinFail  padded.Uint64
	optWinTotal padded.Uint64
	optParams   padded.Uint64 // packed OptGateParams (window, num, den, probe)
}

// NewSemantic creates the semantic lock for one ADT instance of the class
// compiled into table.
func NewSemantic(table *ModeTable) *Semantic {
	s := &Semantic{
		table: table,
		mechs: make([]mechV2, table.NumMechanisms()),
		v1:    make([]mechanism, table.NumMechanisms()),
		id:    instanceIDs.Add(1),
	}
	for i := range s.mechs {
		s.mechs[i].init(table.partSizes[i], table.summaryOn[i])
		s.v1[i].init(table.partSizes[i])
	}
	s.optParams.Store(packOptGate(DefaultOptGateParams()))
	return s
}

// Table returns the mode table the lock was built from.
func (s *Semantic) Table() *ModeTable { return s.table }

// ID returns the instance's unique identifier (the paper's unique(x)).
func (s *Semantic) ID() uint64 { return s.id }

// Acquire blocks until the transaction may hold mode m, then records one
// holder of m. Callers use Txn.Lock rather than calling this directly.
func (s *Semantic) Acquire(m ModeID) {
	p := s.table.part[m]
	if p < 0 {
		return // mode conflicts with nothing; no mechanism needed
	}
	if s.DisableMechV2 {
		s.v1[p].acquire(s.table.localIdx[m], s.table.conflict[m], s.DisableFastPath)
		return
	}
	// The successful first attempt — the overwhelmingly common case — is
	// straight-lined here so it runs one call deep (tryAcquire); retries
	// and blocking live in acquireContended.
	mech := &s.mechs[p]
	c := &s.table.masks[m]
	if s.DisableFastPath {
		mech.slowAcquire(c, nil)
		return
	}
	if mech.tryAcquire(c) {
		mech.fastPath.Add(1)
		return
	}
	mech.acquireContended(c, nil)
}

// acquireLogged is Acquire carrying the acquirer's transaction log so a
// blocked waiter exposes it to the stall watchdog. Txn.Lock routes here;
// the fast path is identical to Acquire's.
func (s *Semantic) acquireLogged(m ModeID, log []Acquisition) {
	p := s.table.part[m]
	if p < 0 {
		return
	}
	if s.DisableMechV2 {
		s.v1[p].acquire(s.table.localIdx[m], s.table.conflict[m], s.DisableFastPath)
		return
	}
	mech := &s.mechs[p]
	c := &s.table.masks[m]
	if s.DisableFastPath {
		mech.slowAcquire(c, log)
		return
	}
	if mech.tryAcquire(c) {
		mech.fastPath.Add(1)
		return
	}
	mech.acquireContended(c, log)
}

// TryAcquire attempts to acquire mode m without blocking; it reports
// whether the acquisition succeeded.
func (s *Semantic) TryAcquire(m ModeID) bool {
	p := s.table.part[m]
	if p < 0 {
		return true
	}
	if s.DisableMechV2 {
		return s.v1[p].tryAcquire(s.table.localIdx[m], s.table.conflict[m])
	}
	return s.mechs[p].tryAcquire(&s.table.masks[m])
}

// Release undoes one Acquire of mode m.
func (s *Semantic) Release(m ModeID) {
	p := s.table.part[m]
	if p < 0 {
		return
	}
	if s.DisableMechV2 {
		s.v1[p].release(s.table.localIdx[m])
		return
	}
	// Spelled out instead of calling retreat+wake: both inline here, so
	// an uncontended release (no registered waiter on the slot) makes no
	// calls at all — one atomic RMW and one atomic load.
	//
	// Release does NOT touch the optimistic version counter; the bump
	// happens on acquire (see mechV2.version). A release inside a read
	// window needs no signal of its own: either the releaser held the
	// mode at the reader's observation scan (the scan saw its counter
	// and the observation failed), or it acquired after the reader's
	// version snapshot (its acquire-time bump already invalidates the
	// snapshot). A writer that acquired AND released entirely before the
	// observation simply serialized ahead of the reader — its effects
	// are fully visible, which is exactly a consistent outcome.
	mech := &s.mechs[p]
	slot := int32(s.table.localIdx[m])
	mech.retreat(slot)
	if mech.waitMask[slot>>6].Load()&(1<<(uint(slot)&63)) != 0 {
		mech.wakeSlow(slot)
	}
}

// AcquireBatch acquires several modes on the instance in one pass — the
// fused-prologue acquisition. Within each mechanism the batch claims
// every constituent's counter slot before scanning the union of their
// conflict masks once, and a conflict parks a single waiter registered
// with the union mask instead of one waiter per mode. Modes falling in
// different mechanisms commute pairwise by construction (§5.2), so the
// mechanisms are processed sequentially without deadlock risk. One
// batched acquisition counts once in LockStats regardless of the number
// of constituent modes. Callers use Txn.LockBatch rather than calling
// this directly.
func (s *Semantic) AcquireBatch(ms ...ModeID) { s.acquireBatchLogged(ms, nil) }

// acquireBatchLogged is AcquireBatch carrying the acquirer's transaction
// log for the stall watchdog, as acquireLogged does for Acquire.
func (s *Semantic) acquireBatchLogged(ms []ModeID, log []Acquisition) {
	switch len(ms) {
	case 0:
		return
	case 1:
		s.acquireLogged(ms[0], log)
		return
	}
	if s.DisableMechV2 {
		// v1 (ablation A5) has no batch machinery; sequential
		// acquisition is equivalent, just one waiter per mode on
		// conflict.
		for _, m := range ms {
			s.acquireLogged(m, log)
		}
		return
	}
	// Single-mechanism batches — the shape fused prologues produce,
	// since one instance's modes almost always share a partition — skip
	// the grouping scratch. The optimistic pre-pass claims mode by mode
	// exactly as the unfused prologue would, so a conflict-free batch
	// costs no more than the sequential claims it replaces; a failed
	// claim undoes the earlier ones (the pre-pass never blocks while
	// holding partial claims, so two opposed batches cannot deadlock
	// here) and falls back to the one-pass batch machinery, whose
	// per-slot thresholds also self-permit intra-batch conflicts the
	// per-mode claims cannot.
	p0 := s.table.part[ms[0]]
	samePart := p0 >= 0
	for _, m := range ms[1:] {
		if s.table.part[m] != p0 {
			samePart = false
			break
		}
	}
	if samePart {
		mech := &s.mechs[p0]
		if !s.DisableFastPath {
			k := 0
			ok := true
			for ; k < len(ms); k++ {
				if !mech.tryAcquire(&s.table.masks[ms[k]]) {
					ok = false
					break
				}
			}
			if ok {
				// One batched acquisition counts once (the documented
				// LockStats contract), exactly as the tryAcquireBatch
				// success path below counts once — not once per
				// constituent mode.
				mech.batches.Add(1)
				mech.fastPath.Add(1)
				return
			}
			for j := 0; j < k; j++ {
				s.Release(ms[j])
			}
		}
		sc := batchScratchPool.Get().(*batchScratch)
		sc.modes = append(sc.modes[:0], ms...)
		s.acquireMechBatch(p0, sc, log)
		batchScratchPool.Put(sc)
		return
	}
	sc := batchScratchPool.Get().(*batchScratch)
	for i, m0 := range ms {
		p := s.table.part[m0]
		if p < 0 {
			continue // conflicts with nothing; no mechanism needed
		}
		already := false
		for j := 0; j < i; j++ {
			if s.table.part[ms[j]] == p {
				already = true // this mechanism's group was acquired at its first mode
				break
			}
		}
		if already {
			continue
		}
		sc.modes = append(sc.modes[:0], m0)
		for j := i + 1; j < len(ms); j++ {
			if s.table.part[ms[j]] == p {
				sc.modes = append(sc.modes, ms[j])
			}
		}
		if len(sc.modes) == 1 {
			s.acquireLogged(m0, log)
			continue
		}
		s.acquireMechBatch(p, sc, log)
	}
	batchScratchPool.Put(sc)
}

// acquireMechBatch assembles the batch scan structure for one
// mechanism's group of modes and drives the fast/contended/slow
// acquisition ladder, mirroring Acquire's shape.
func (s *Semantic) acquireMechBatch(p int, sc *batchScratch, log []Acquisition) {
	mech := &s.mechs[p]
	mech.batches.Add(1)
	b := &sc.b
	b.slots = b.slots[:0]
	b.claims = b.claims[:0]
	b.refs = b.refs[:0]
	b.words = b.words[:0]
	b.bump = false
	for _, m := range sc.modes {
		c := &s.table.masks[m]
		b.slots = append(b.slots, c.selfSlot)
		b.addClaim(c.selfSlot)
		b.mergeWords(c.words)
		b.bump = b.bump || c.bump
		for _, r := range c.refs {
			b.addRef(int32(r.slot))
		}
	}
	// Bake the thresholds: a slot the batch itself claims k times blocks
	// only past k holders. This generalizes the single-mode self-slot
	// threshold of 1, and makes intra-batch conflicts self-permitting —
	// they are one transaction's own modes, and the no-two-transactions
	// invariant says nothing about modes held by the same transaction.
	for i := range b.refs {
		b.refs[i].threshold = b.ownClaims(int32(b.refs[i].slot))
	}
	if s.DisableFastPath {
		mech.slowAcquireBatch(b, log)
		return
	}
	if mech.tryAcquireBatch(b) {
		mech.fastPath.Add(1)
		return
	}
	mech.acquireBatchContended(b, log)
}

// Stats returns the instance's cumulative acquisition statistics, summed
// over both mechanism generations.
func (s *Semantic) Stats() LockStats {
	var out LockStats
	for i := range s.mechs {
		out.FastPath += s.mechs[i].fastPath.Load() + s.v1[i].fastPath.Load()
		out.Slow += s.mechs[i].slow.Load() + s.v1[i].slow.Load()
		out.Waits += s.mechs[i].waits.Load() + s.v1[i].waits.Load()
		out.Batches += s.mechs[i].batches.Load()
		out.Stalls += s.mechs[i].stalls.Load() + s.v1[i].stalls.Load()
		out.WaitNanos += s.mechs[i].waitNanos.Load()
	}
	out.OptimisticHits = s.optHits.Load()
	out.OptimisticRetries = s.optRetries.Load()
	out.OptimisticRefusals = s.optRefused.Load()
	return out
}

// ---------------------------------------------------------------------
// Optimistic read validation (Txn.TryOptimistic)
// ---------------------------------------------------------------------

// The adaptive gate's default tuning: validation outcomes are accounted
// in windows of optWindow attempts; a window whose failure share
// reaches optDisableNum/optDisableDen — i.e. fails·den >= window·num,
// so with the defaults the gate closes at exactly 16 failures of 64,
// and stays open at 15 — disables the optimistic path for
// optProbeInterval executions, after which a single probe attempt
// decides whether to re-enable. Contended instances thus degrade to the
// pessimistic path at a bounded duty cycle (one wasted body execution
// per ~optProbeInterval sections), which is what keeps the write-heavy
// regression bounded. These are the DEFAULTS of the per-instance packed
// parameter cell (optParams); SetOptGateParams retunes a live instance.
const (
	optWindow        = 64
	optDisableNum    = 1 // disable at ≥ num/den = 1/4 failures per window
	optDisableDen    = 4
	optProbeInterval = 8192
)

// observeMode begins one optimistic observation of mode m on the
// instance: it snapshots the version counter of m's mechanism and then
// verifies that no conflicting mode currently has a holder. The order
// is load-bearing — version FIRST, holders SECOND. Every conflicting
// acquirer then lands in exactly one of three cases:
//
//  1. bumped before our snapshot, still holding at our scan — the scan
//     sees its counter and the observation fails;
//  2. bumped before our snapshot, released before our scan — its whole
//     critical section finished before any of our reads, so it is a
//     serialized predecessor, not a conflict;
//  3. claimed after our scan — its bump lands after our snapshot and
//     validateMode's compare fails.
//
// Loading the version AFTER the scan would open a hole: a writer could
// claim and bump between the two, hold through our reads, and have its
// bump absorbed into the snapshot — invisible to scan and compare
// alike. A false result means a conflicting holder is visible right
// now (the section would have blocked), or the instance runs the v1
// mechanism (ablation A5), which has no version counters; the caller
// falls back to the pessimistic prologue either way.
func (s *Semantic) observeMode(m ModeID) (uint64, bool) {
	p := s.table.part[m]
	if p < 0 {
		// The mode conflicts with nothing: reads under it are always
		// valid, nothing to snapshot or validate.
		return 0, true
	}
	if s.DisableMechV2 {
		return 0, false
	}
	mech := &s.mechs[p]
	ver := mech.version.Load()
	if mech.conflictsUnclaimed(&s.table.masks[m]) {
		return 0, false
	}
	return ver, true
}

// validateMode ends an optimistic observation: one version load, one
// compare — no holder re-scan. An unchanged version proves no
// conflicting acquisition succeeded since the snapshot (acquire-side
// bump), and observeMode's scan already ruled out holders established
// before it; together the section's reads are a consistent snapshot,
// serializable at the observation point. One deliberate asymmetry: a
// conflicting writer whose acquire-time bump has not yet surfaced at
// this load can slip past the compare, but then none of its mutations
// can have been visible to the section's reads either — shared state
// is only touched through the ADTs' own linearizable operations, and
// a read that returned a post-acquire mutation synchronizes with the
// writer (mutex/atomic ordering), which makes the bump — sequenced
// before the mutation — visible to this later load. Slipping past is
// therefore only possible for writers the section never saw: the
// snapshot stays consistent.
func (s *Semantic) validateMode(m ModeID, ver uint64) bool {
	p := s.table.part[m]
	if p < 0 {
		return true
	}
	return s.mechs[p].version.Load() == ver
}

// Version returns the current optimistic version counter of mode m's
// mechanism (test hook; 0 for conflict-free modes).
func (s *Semantic) Version(m ModeID) uint64 {
	p := s.table.part[m]
	if p < 0 || s.DisableMechV2 {
		return 0
	}
	return s.mechs[p].version.Load()
}

// optimisticAllowed is the adaptive gate's admission test, asked once
// per Observe. Enabled (gate == 0) admits everything; disabled counts
// executions down and admits exactly the one that reaches zero as a
// probe — recordValidation re-arms the countdown if the probe fails.
// The counter races benignly: concurrent decrements can only shorten
// the countdown or wrap it, and a wrapped (huge) value is treated as an
// expired countdown.
func (s *Semantic) optimisticAllowed() bool {
	g := s.optGate.Load()
	if g == 0 {
		return true
	}
	n := s.optGate.Add(^uint64(0))
	if n == 0 || n > uint64(unpackOptGate(s.optParams.Load()).ProbeInterval) {
		// Reached (or raced past) the probe point. Clear the gate so the
		// probe's recordValidation starts from the enabled state.
		s.optGate.Store(0)
		return true
	}
	return false
}

// recordValidation accounts one optimistic outcome on the instance —
// cumulative counters for telemetry, windowed counters for the gate. A
// window whose failure share reaches DisableNum/DisableDen (at the
// boundary: exactly window·num/den failures close it, one fewer does
// not) disables the optimistic path for ProbeInterval executions.
//
// Exactly ONE closer per window: the updater whose CompareAndSwap
// resets the total owns the close. Racing updaters that also observed a
// full window lose the CAS (the counter has moved past the value they
// saw) and return — the double-close of the earlier Store-based code,
// where two racers could each evaluate and re-arm the gate from one
// window's partially-reset counts, cannot happen. The failure counter
// is harvested with a Swap so a failure recorded between the closer's
// read and reset is carried into the next window instead of vanishing.
func (s *Semantic) recordValidation(ok bool) {
	if ok {
		s.optHits.Add(1)
	} else {
		s.optRetries.Add(1)
		s.optWinFail.Add(1)
	}
	p := unpackOptGate(s.optParams.Load())
	total := s.optWinTotal.Add(1)
	if total < uint64(p.Window) {
		return
	}
	// total >= window also catches a window the controller shrank below
	// the accumulated count mid-flight; whoever wins the CAS closes it.
	if !s.optWinTotal.CompareAndSwap(total, 0) {
		return
	}
	fails := s.optWinFail.Swap(0)
	if fails*uint64(p.DisableDen) >= total*uint64(p.DisableNum) {
		s.optGate.Store(uint64(p.ProbeInterval))
	}
}

// recordRefusal accounts one observe-time turn-away: the attempt was
// rejected before its body ran, so no work was wasted. Refusals stay
// out of the gate's failure window on purpose. The gate's cost model
// weighs wasted re-execution against the pessimistic envelope, and a
// refusal wastes nothing — but more importantly, refusals are mostly
// MANUFACTURED by the gate itself: once it closes, sections serialize
// through the pessimistic fallback, every fallback holder refuses the
// optimists arriving behind it, and if those refusals counted as
// failures the gate would observe a near-total "failure" rate of its
// own making and never re-open (and would starve the control plane of
// honest samples while doing so).
func (s *Semantic) recordRefusal() { s.optRefused.Add(1) }

// OptimisticEnabled reports whether the adaptive gate currently admits
// optimistic execution on the instance (telemetry/test hook; a false
// result is transient — the gate probes itself open again).
func (s *Semantic) OptimisticEnabled() bool { return s.optGate.Load() == 0 }

// Holders returns the current holder count of mode m (test hook).
func (s *Semantic) Holders(m ModeID) int32 {
	p := s.table.part[m]
	if p < 0 {
		return 0
	}
	if s.DisableMechV2 {
		return s.v1[p].counts[s.table.localIdx[m]].Load()
	}
	return s.mechs[p].counts[s.table.localIdx[m]].Load()
}

// ---------------------------------------------------------------------
// Lock mechanism v2
// ---------------------------------------------------------------------

// mechV2 is one independent lock mechanism: the Fig 20 design (an atomic
// counter per locking mode, an internal lock to block and wake waiters,
// increment-then-scan Dekker acquisition) rebuilt for scalability.
//
//   - Counters live in padded.Int32 slots, one cache line each, so
//     acquisitions of commuting modes never contend in hardware.
//
//   - Counter slots are grouped into 64-slot words, and each word keeps a
//     padded summary counter of the claims in flight on its slots. A
//     claim increments its word's summary BEFORE its own counter and
//     decrements it AFTER, so at every instant summary[w] over-
//     approximates the occupancy of word w: summary[w] == 0 proves the
//     word empty and lets the scan skip all its slots in one load. Only
//     a hot word falls back to the exact per-slot scan over the mode's
//     conflict-mask bits. (The summary is deliberately a claim count
//     rather than a nonzero-slot count maintained on 0↔1 transitions:
//     transition-maintained indicators under-approximate while the
//     transition owner is preempted between its counter and summary
//     updates — the hazard the SNZI literature exists to solve — and an
//     under-approximating summary would miss established holders.)
//
//   - Summaries are a static per-mechanism decision (ModeTable.summaryOn):
//     maintenance costs two extra RMWs per acquire/release cycle, which
//     only a wide conflict mask (a wildcard mode) amortizes. The small
//     fine-grained mechanisms that partitioning produces in the common
//     case skip summaries and scan their few conflicting slots exactly,
//     keeping the uncontended fast path at one RMW — v1 parity.
//
//   - The Dekker argument is unchanged: an acquirer publishes its claim
//     (summary, then counter) before scanning, so of two conflicting
//     acquirers at least one observes the other, via either the summary
//     or the exact counter.
//
//   - Blocking uses a waiter registry keyed by each waiter's conflict
//     mask instead of a single broadcast condition variable: release(s)
//     wakes only waiters whose mask covers slot s. waitMask[w] publishes
//     (ahead of time, under mu) which slots have interested waiters, so
//     an uncontended release stays one atomic load. No lost wakeups: a
//     waiter registers (and its waitMask bits are stored) before its
//     failing re-scan, and a releaser decrements before checking
//     waitMask, so either the waiter's scan sees the decrement or the
//     releaser sees the waiter.
//
//   - The fast-path retry bound adapts: retries that eventually succeed
//     raise the bound (spinning is paying off), a fall-through to the
//     slow path lowers it. The bound stays within [1, 8]; LockStats
//     expose the resulting fast/slow split.
type mechV2 struct {
	mu       sync.Mutex
	waiters  []*waiterV2     // registry; mu-protected
	waitMask []padded.Uint64 // per-word slots with registered waiters; stored under mu, loaded lock-free
	counts   []padded.Int32  // per-slot holder counts, one cache line each
	summary  []padded.Int32  // per-word claim counts (over-approximate occupancy)
	spin     padded.Int32    // adaptive fast-path retry bound

	// spinMin/spinMax bound the adaptive retry count. They default to
	// the former minSpin/maxSpin constants and are retuned at runtime by
	// the control plane (Semantic.SetSpinBounds); only the contended
	// path loads them, so the uncontended fast path is unchanged.
	spinMin atomic.Int32
	spinMax atomic.Int32

	// maintainSummary is the compile-time decision to maintain summary
	// counters (see ModeTable.summaryOn). When false, claims touch only
	// their own counter and scans are exact. It is immutable: enabling
	// maintenance on a live mechanism cannot reconstruct the
	// over-approximation invariant without stopping the world.
	maintainSummary bool
	// scanSummary selects whether conflict scans USE the maintained
	// summaries (the word-skip shortcut) or walk the exact flat slot
	// list. Tunable at any moment (Semantic.SetSummaryScan): maintenance
	// keeps the over-approximation invariant alive continuously, so
	// either scan flavor is correct at every instant — the toggle only
	// trades scan cost (summaries win on wide, mostly-idle masks; exact
	// scans win when the words are hot and the summary load is pure
	// overhead). Never true unless maintainSummary is.
	scanSummary atomic.Bool

	// watched is set once a Watchdog registers the instance. Slow-path
	// waiters only pay a time.Now() for their diagnostic timestamp when
	// somebody will actually read it (sampleMech) or when global wait
	// sampling (SetWaitTiming) is on; otherwise the clock call is
	// skipped entirely.
	watched atomic.Bool
	// watchedAt is when watched first flipped on (unix nanos, 0 =
	// never). The sampler uses it as a lower bound on the wait of
	// waiters that parked before timing was available.
	watchedAt atomic.Int64

	// version is the optimistic-read invalidation counter: every
	// SUCCESSFUL acquisition of a mode that conflicts with anything
	// advances it, immediately after the claim-and-scan settles. A
	// lock-free reader snapshots it at observation and compares at
	// validation, so validation is a single load — no holder re-scan.
	// The bump lives on the acquire side (not release) because that is
	// the only transition a validator cannot otherwise rule out: an
	// established holder is caught by the observation's holder scan, a
	// writer that came and went entirely before the observation is just
	// a serialized predecessor, but a writer arriving after the snapshot
	// is invisible to any scan that already ran — only its bump reveals
	// it. See Semantic.observeMode/validateMode for the full protocol
	// and DESIGN.md §10 for the interleaving argument. Padded: it is a
	// shared RMW target for every conflicting acquisition in the
	// mechanism, like the stat cells below.
	version padded.Uint64

	fastPath  atomic.Uint64
	slow      atomic.Uint64
	waits     atomic.Uint64
	batches   atomic.Uint64
	stalls    atomic.Uint64
	waitNanos atomic.Int64
}

// waiterV2 is one blocked acquirer: the conflict mask it is waiting on,
// a 1-buffered signal channel (buffering makes a signal that races with
// the waiter's re-scan stick instead of getting lost), and diagnostic
// metadata for the stall watchdog — when the wait began and, for
// transaction-driven acquisitions, the blocked transaction's acquisition
// log as of blocking (the owner is parked inside Acquire and appends to
// the log only after it deregisters, so the watchdog may read the
// snapshot under mu without racing the owner).
type waiterV2 struct {
	mask  []wordMask
	ch    chan struct{}
	since time.Time
	log   []Acquisition
}

// waiterPool recycles waiterV2s so the slow path allocates nothing in
// steady state. A waiter is only returned after deregistration under mu,
// past which no releaser can reach it; any token a racing signal left in
// the channel is drained on reuse.
var waiterPool = sync.Pool{New: func() any {
	return &waiterV2{ch: make(chan struct{}, 1)}
}}

// waitersOut counts waiters checked out of waiterPool and not yet
// returned. The chaos harness asserts it returns to zero after a fault
// burst drains: a nonzero steady-state value means a slow path leaked a
// waiter (and with it, possibly a registration).
var waitersOut atomic.Int64

// WaitersOutstanding returns the number of slow-path waiters currently
// checked out of the free-list across all instances. Zero when the
// system is quiescent.
func WaitersOutstanding() int64 { return waitersOut.Load() }

// getWaiter checks a waiter out of the pool for one slow-path wait on
// this mechanism. The diagnostic timestamp is gated: time.Now() costs a
// vDSO call on every slow-path entry, and nothing reads w.since unless
// a Watchdog samples the instance (watched) or a telemetry consumer
// asked for wait timing (SetWaitTiming). A waiter parked before either
// gate opened carries a zero since; sampleMech reports it with a lower
// bound from watchedAt instead of a measured wait.
func (m *mechV2) getWaiter(mask []wordMask, log []Acquisition) *waiterV2 {
	w := waiterPool.Get().(*waiterV2)
	select {
	case <-w.ch: // stale token from the previous use
	default:
	}
	w.mask = mask
	if m.watched.Load() || waitSampling.Load() {
		w.since = time.Now()
	} else {
		w.since = time.Time{}
	}
	w.log = log
	waitersOut.Add(1)
	return w
}

// settleWait folds a finished waiter's wait into the mechanism's
// cumulative wait time, just before the waiter returns to the pool.
// Waiters with a park-time timestamp contribute their measured wait.
// Waiters WITHOUT one — parked while every sampling gate was closed —
// contribute a ">=" lower bound when a gate has opened since: time
// measured from the gate-open instant (the earlier of the mechanism
// becoming watched and the last SetWaitTiming enable), the same
// semantics the watchdog uses for pre-Watch waiters
// (WaiterInfo.Sampled). The bound is sound because an unsampled waiter
// demonstrably parked before the gate opened. Without it, a controller
// that enables wait timing mid-run would read zero-wait samples from
// every waiter already parked — garbage that looks like an idle lock.
// Waiters settling with every gate still closed contribute nothing.
func (m *mechV2) settleWait(w *waiterV2) {
	if !w.since.IsZero() {
		m.waitNanos.Add(int64(time.Since(w.since)))
		return
	}
	if at := m.waitBoundAt(); at != 0 {
		if d := time.Now().UnixNano() - at; d > 0 {
			m.waitNanos.Add(d)
		}
	}
}

// waitBoundAt returns the unix-nano instant from which an unsampled
// waiter's wait can be lower-bounded: the earliest open sampling gate
// (earlier instant = larger, still-sound bound), or 0 when no gate is
// open. Any open gate's enable time is sound — a waiter with no
// timestamp parked while that gate was closed, hence before it opened.
func (m *mechV2) waitBoundAt() int64 {
	var at int64
	if m.watched.Load() {
		at = m.watchedAt.Load()
	}
	if waitSampling.Load() {
		if t := waitTimingAt.Load(); t != 0 && (at == 0 || t < at) {
			at = t
		}
	}
	return at
}

func putWaiter(w *waiterV2) {
	w.mask = nil
	w.log = nil
	waitersOut.Add(-1)
	waiterPool.Put(w)
}

// The former spin constants, now the DEFAULTS of the per-mechanism
// spinMin/spinMax cells (SetSpinBounds retunes a live instance).
const (
	minSpin     = 1
	maxSpin     = 8
	initialSpin = 2
)

func (m *mechV2) init(nSlots int, useSummary bool) {
	words := (nSlots + 63) >> 6
	m.counts = make([]padded.Int32, nSlots)
	m.summary = make([]padded.Int32, words)
	m.waitMask = make([]padded.Uint64, words)
	m.spin.Store(initialSpin)
	m.spinMin.Store(minSpin)
	m.spinMax.Store(maxSpin)
	m.maintainSummary = useSummary
	m.scanSummary.Store(useSummary)
}

// claim publishes one acquisition attempt: summary first, counter
// second, so the summary never under-approximates occupancy.
func (m *mechV2) claim(slot int32) {
	if m.maintainSummary {
		m.summary[slot>>6].Add(1)
	}
	m.counts[slot].Add(1)
}

// retreat withdraws a claim: counter first, summary second (the reverse
// of claim, preserving the over-approximation invariant).
func (m *mechV2) retreat(slot int32) {
	m.counts[slot].Add(-1)
	if m.maintainSummary {
		m.summary[slot>>6].Add(-1)
	}
}

// conflictsUnclaimed is the observer's flavor of conflicts: the caller
// holds no claim of its own, so every conflicting slot — the self slot
// included, when the mode self-conflicts — blocks at threshold 0. It
// always walks the exact flat slot list: an optimistic reader must not
// miss an established holder, and the summary shortcut's only saving is
// on wide wildcard masks that read modes rarely have.
func (m *mechV2) conflictsUnclaimed(c *maskInfo) bool {
	for _, r := range c.refs {
		if m.counts[r.slot].Load() > 0 {
			return true
		}
	}
	return false
}

// conflicts reports whether any conflicting slot has a holder. The
// caller must already have claimed its own slot (the self-slot
// threshold accounts for that). Cold words — summary zero, or just the
// caller's own claim in the caller's word — are skipped with a single
// load; hot words fall back to the exact per-slot scan.
func (m *mechV2) conflicts(c *maskInfo) bool {
	if !m.scanSummary.Load() {
		// Exact scan over the flat slot list: for the few conflicting
		// slots of a summary-less mechanism (or one whose summary scan
		// the control plane turned off) this is cheaper than iterating
		// the bitset words.
		for _, r := range c.refs {
			if m.counts[r.slot].Load() > r.threshold {
				return true
			}
		}
		return false
	}
	for i := range c.words {
		wm := &c.words[i]
		s := m.summary[wm.w].Load()
		if wm.w == c.selfWord {
			if s <= 1 {
				continue // only our own claim lives in this word
			}
		} else if s == 0 {
			continue
		}
		bs := wm.bits
		base := wm.w << 6
		for bs != 0 {
			slot := base + int32(bits.TrailingZeros64(bs))
			bs &= bs - 1
			var threshold int32
			if slot == c.selfSlot {
				threshold = 1
			}
			if m.counts[slot].Load() > threshold {
				return true
			}
		}
	}
	return false
}

func (m *mechV2) tryAcquire(c *maskInfo) bool {
	// The summary-less flavor is written out flat (claim, exact scan,
	// retreat) rather than through claim/conflicts/retreat: the exact
	// scan then inlines here, keeping the partitioned fast path at v1's
	// instruction count (one call from acquire, no further calls).
	// Keyed on the immutable maintenance decision, not the scan toggle,
	// so the summary-less common case pays no atomic load here.
	if !m.maintainSummary {
		m.counts[c.selfSlot].Add(1)
		for _, r := range c.refs {
			if m.counts[r.slot].Load() > r.threshold {
				m.counts[c.selfSlot].Add(-1)
				// Our transient claim may have made a concurrent scanner
				// back off and sleep; its mask covers our slot, so a
				// targeted wake suffices. No version bump: a withdrawn
				// claim never mutated anything, and bumping here would
				// fail optimistic readers for nothing.
				m.wake(c.selfSlot)
				return false
			}
		}
		if c.bump {
			m.version.Add(1)
		}
		return true
	}
	m.claim(c.selfSlot)
	if !m.conflicts(c) {
		if c.bump {
			m.version.Add(1)
		}
		return true
	}
	m.retreat(c.selfSlot)
	m.wake(c.selfSlot)
	return false
}

// acquireContended continues an acquisition whose first tryAcquire
// failed: bounded adaptive retries, then the blocking slow path. The
// first attempt happens in Semantic.Acquire before the adaptive bound
// is even loaded, so the uncontended path pays no extra atomic load.
func (m *mechV2) acquireContended(c *maskInfo, log []Acquisition) {
	bound, mn, mx := m.spinBound()
	for attempt := int32(1); attempt < bound; attempt++ {
		if m.tryAcquire(c) {
			m.fastPath.Add(1)
			if bound < mx {
				// Retrying paid off; spend more retries next time.
				m.spin.Store(bound + 1)
			}
			return
		}
	}
	if bound > mn {
		// Conflicts persisted through every retry; fall through to the
		// slow path sooner next time.
		m.spin.Store(bound - 1)
	}
	m.slowAcquire(c, log)
}

// spinBound loads the adaptive retry count clamped into the current
// (tunable) bounds. The clamp matters after a retune: the floating
// count may sit outside the new [min, max] and must re-enter it rather
// than keep drifting from a stale position.
func (m *mechV2) spinBound() (bound, mn, mx int32) {
	bound = m.spin.Load()
	mn, mx = m.spinMin.Load(), m.spinMax.Load()
	if mx < mn {
		// A retuner stores min before max; between the two stores the
		// pair can be momentarily inverted. Collapse to the min.
		mx = mn
	}
	if bound < mn {
		bound = mn
	} else if bound > mx {
		bound = mx
	}
	return bound, mn, mx
}

// slowAcquire serializes claim-and-scan through the internal lock and
// sleeps on the waiter's own channel while conflicts persist. The waiter
// is registered before its first scan under mu and stays registered
// until it acquires, so a releaser that decrements after a failed scan
// is guaranteed to find it in the registry.
func (m *mechV2) slowAcquire(c *maskInfo, log []Acquisition) {
	m.slow.Add(1)
	w := m.getWaiter(c.words, log)
	m.mu.Lock()
	m.registerLocked(w)
	for {
		m.claim(c.selfSlot)
		if !m.conflicts(c) {
			if c.bump {
				m.version.Add(1)
			}
			m.deregisterLocked(w)
			m.mu.Unlock()
			m.settleWait(w)
			putWaiter(w)
			return
		}
		m.retreat(c.selfSlot)
		// Unlike tryAcquire's retreat, no signal is needed here: every
		// slow-path scan runs under mu, so our transient claim was
		// invisible to other slow scanners, and a fast-path scanner it
		// bounced re-scans under mu on its own way into slowAcquire.
		// (Signalling here would also let two same-slot waiters wake each
		// other in a storm that starves the holder.)
		m.waits.Add(1)
		m.mu.Unlock()
		<-w.ch
		m.mu.Lock()
	}
}

// stallSlot is one conflicting counter slot observed over its threshold
// when a bounded acquisition gave up: the local slot index and the number
// of holders beyond the acquirer's own transient claim.
type stallSlot struct {
	slot  int32
	count int32
}

// acqOutcome is the three-way result of a bounded acquisition: the mode
// was acquired, patience ran out with a conflict still present, or the
// caller's cancel channel closed first (a hedge won the race, a shutdown
// began) and the waiter withdrew without claiming anything.
type acqOutcome uint8

const (
	acqOK acqOutcome = iota
	acqStalled
	acqCanceled
)

// conflictHolders collects every conflicting slot currently over its
// threshold, with the count of other holders on each. The caller has
// already claimed its own slot (thresholds account for that, as in
// conflicts). An empty result means no conflict — the claim can stand.
// This is the diagnostic twin of conflicts: it always walks the exact
// flat slot list rather than the summary bitset, because it runs only on
// the timeout path where completeness beats speed.
func (m *mechV2) conflictHolders(c *maskInfo) []stallSlot {
	var out []stallSlot
	for _, r := range c.refs {
		if n := m.counts[r.slot].Load() - r.threshold; n > 0 {
			out = append(out, stallSlot{slot: int32(r.slot), count: n})
		}
	}
	return out
}

// acquireWithin is slowAcquire with bounded patience: it sleeps on the
// waiter channel under a timer and gives up once patience is exhausted,
// reporting the conflicting holder slots it last observed. On timeout it
// makes one final claim-and-scan under mu — a release may have raced the
// timer — so a reported stall is a real conflict observed at the moment
// of giving up, never a stale one.
//
// A nil cancel channel never fires (the select arm blocks forever), so
// the plain bounded path pays only the extra select case. A closed
// cancel withdraws immediately WITHOUT the final claim-and-scan: the
// caller has explicitly renounced the lock (a hedge validated, a
// shutdown began), so acquiring on a cleared conflict would hand it a
// lock it must then release — worse than simply leaving.
func (m *mechV2) acquireWithin(c *maskInfo, patience time.Duration, cancel <-chan struct{}, log []Acquisition) ([]stallSlot, acqOutcome) {
	m.slow.Add(1)
	w := m.getWaiter(c.words, log)
	timer := time.NewTimer(patience)
	defer timer.Stop()
	m.mu.Lock()
	m.registerLocked(w)
	for {
		m.claim(c.selfSlot)
		if !m.conflicts(c) {
			if c.bump {
				m.version.Add(1)
			}
			m.deregisterLocked(w)
			m.mu.Unlock()
			m.settleWait(w)
			putWaiter(w)
			return nil, acqOK
		}
		m.retreat(c.selfSlot)
		m.waits.Add(1)
		m.mu.Unlock()
		select {
		case <-w.ch:
			m.mu.Lock()
		case <-cancel:
			m.mu.Lock()
			m.withdrawLocked(w)
			m.mu.Unlock()
			m.settleWait(w)
			putWaiter(w)
			return nil, acqCanceled
		case <-timer.C:
			m.mu.Lock()
			m.claim(c.selfSlot)
			holders := m.conflictHolders(c)
			if len(holders) == 0 {
				// The conflict cleared between the releaser's wake and the
				// timer firing; the claim stands — acquired, not stalled.
				if c.bump {
					m.version.Add(1)
				}
				m.deregisterLocked(w)
				m.mu.Unlock()
				m.settleWait(w)
				putWaiter(w)
				return nil, acqOK
			}
			m.retreat(c.selfSlot)
			m.withdrawLocked(w)
			m.mu.Unlock()
			m.settleWait(w)
			putWaiter(w)
			return holders, acqStalled
		}
	}
}

// withdrawLocked removes a waiter that is giving up (timeout or cancel):
// it deregisters the waiter and re-donates any wake token a racing
// release parked in its channel. That token announced a release this
// waiter will now never consume; forwarding it to the remaining
// overlapping waiters keeps their progress independent of the next
// release. (Channels are per-waiter, so a discarded token cannot block
// anyone outright — re-donation converts our wasted wakeup into a
// chance at theirs.) Callers hold mu.
func (m *mechV2) withdrawLocked(w *waiterV2) {
	m.deregisterLocked(w)
	select {
	case <-w.ch:
		m.redonateLocked(w.mask)
	default:
	}
}

// redonateLocked forwards an orphaned wake token to every remaining
// waiter whose conflict mask overlaps the departing waiter's. Spurious
// wakeups just re-scan and sleep again; a missed wakeup would strand a
// waiter, so over-delivery is the safe direction. Callers hold mu.
func (m *mechV2) redonateLocked(mask []wordMask) {
	for _, wt := range m.waiters {
		if masksOverlap(wt.mask, mask) {
			select {
			case wt.ch <- struct{}{}:
			default: // token already pending; one is enough
			}
		}
	}
}

// masksOverlap reports whether two sparse word bitsets share any slot.
func masksOverlap(a, b []wordMask) bool {
	for i := range a {
		for j := range b {
			if a[i].w == b[j].w && a[i].bits&b[j].bits != 0 {
				return true
			}
		}
	}
	return false
}

// wake signals the waiters whose conflict mask covers slot. The
// lock-free waitMask load keeps the no-waiter case (the common one) to a
// single atomic read; it is split from the locked path below so this
// check inlines into Release, making an uncontended release call-free.
func (m *mechV2) wake(slot int32) {
	if m.waitMask[slot>>6].Load()&(1<<(uint(slot)&63)) != 0 {
		m.wakeSlow(slot)
	}
}

func (m *mechV2) wakeSlow(slot int32) {
	m.mu.Lock()
	m.signalLocked(slot)
	m.mu.Unlock()
}

// signalLocked sends a wake token to every registered waiter whose mask
// covers slot. Callers hold mu.
func (m *mechV2) signalLocked(slot int32) {
	w, bit := slot>>6, uint64(1)<<(uint(slot)&63)
	for _, wt := range m.waiters {
		for i := range wt.mask {
			if wt.mask[i].w == w && wt.mask[i].bits&bit != 0 {
				select {
				case wt.ch <- struct{}{}:
				default: // token already pending; one is enough
				}
				break
			}
		}
	}
}

// registerLocked adds w to the registry and publishes its mask bits.
// Callers hold mu.
func (m *mechV2) registerLocked(w *waiterV2) {
	m.waiters = append(m.waiters, w)
	for i := range w.mask {
		wm := &w.mask[i]
		m.waitMask[wm.w].Store(m.waitMask[wm.w].Load() | wm.bits)
	}
}

// deregisterLocked removes w and recomputes waitMask from the remaining
// waiters. Each word is recomputed into a local and written with one
// Store — never zeroed first — so a concurrent lock-free reader can
// observe a stale-high mask (a harmless extra mu acquisition) but never
// a transiently-cleared bit of a still-registered waiter (which would be
// a lost wakeup). Callers hold mu.
func (m *mechV2) deregisterLocked(w *waiterV2) {
	for i, x := range m.waiters {
		if x == w {
			last := len(m.waiters) - 1
			m.waiters[i] = m.waiters[last]
			m.waiters[last] = nil
			m.waiters = m.waiters[:last]
			break
		}
	}
	for wd := range m.waitMask {
		var bits uint64
		for _, wt := range m.waiters {
			for i := range wt.mask {
				if int(wt.mask[i].w) == wd {
					bits |= wt.mask[i].bits
					break
				}
			}
		}
		m.waitMask[wd].Store(bits)
	}
}

// ---------------------------------------------------------------------
// Batched acquisition (fused prologues)
// ---------------------------------------------------------------------

// batchScan is the one-pass scan structure of a batched acquisition
// within one mechanism: every counter slot the batch claims (duplicates
// included, in claim order), the deduplicated own-claim count per slot,
// the union of the constituents' conflict lists with thresholds raised
// to the batch's own claim counts, and the union word bitset — used
// both for summary scans and as the single waiter's conflict mask.
type batchScan struct {
	slots  []int32
	claims []slotClaim
	refs   []conflictRef
	words  []wordMask

	// bump: some constituent mode conflicts with something, so a
	// successful batch acquisition must advance the mechanism's version
	// counter (once — one batch is one acquisition event to validators).
	bump bool
}

// slotClaim is the batch's claim count on one counter slot (several
// constituent modes may share a slot after canonical-mode merging).
type slotClaim struct {
	slot  int32
	count int32
}

func (b *batchScan) addClaim(slot int32) {
	for i := range b.claims {
		if b.claims[i].slot == slot {
			b.claims[i].count++
			return
		}
	}
	b.claims = append(b.claims, slotClaim{slot: slot, count: 1})
}

// ownClaims returns how many claims the batch itself publishes on slot.
// Linear over the claims — prologue batches hold a handful of modes.
func (b *batchScan) ownClaims(slot int32) int32 {
	for i := range b.claims {
		if b.claims[i].slot == slot {
			return b.claims[i].count
		}
	}
	return 0
}

// ownClaimsInWord returns the batch's total claims on slots of word w —
// its own contribution to the mechanism's summary counter of that word.
func (b *batchScan) ownClaimsInWord(w int32) int32 {
	var n int32
	for i := range b.claims {
		if b.claims[i].slot>>6 == w {
			n += b.claims[i].count
		}
	}
	return n
}

func (b *batchScan) addRef(slot int32) {
	for i := range b.refs {
		if int32(b.refs[i].slot) == slot {
			return
		}
	}
	b.refs = append(b.refs, conflictRef{slot: int(slot)})
}

// mergeWords ORs one mode's conflict word bitset into the union mask.
func (b *batchScan) mergeWords(words []wordMask) {
	for _, wm := range words {
		merged := false
		for i := range b.words {
			if b.words[i].w == wm.w {
				b.words[i].bits |= wm.bits
				merged = true
				break
			}
		}
		if !merged {
			b.words = append(b.words, wm)
		}
	}
}

// batchScratch carries the per-call scratch of AcquireBatch: the modes
// gathered per mechanism and the batch scan structure. Pooled so fused
// prologues allocate nothing in steady state.
type batchScratch struct {
	modes []ModeID
	b     batchScan
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// tryAcquireBatch publishes every claim of the batch, then scans the
// union conflict structure once. The Dekker argument is unchanged from
// the single-mode protocol, applied per constituent: every claim is
// published before any scan, so of two conflicting acquirers at least
// one observes the other.
func (m *mechV2) tryAcquireBatch(b *batchScan) bool {
	for _, s := range b.slots {
		m.claim(s)
	}
	if !m.conflictsBatch(b) {
		if b.bump {
			m.version.Add(1)
		}
		return true
	}
	for _, s := range b.slots {
		m.retreat(s)
	}
	// As in tryAcquire: our transient claims may have bounced concurrent
	// scanners toward the slow path; their masks cover our slots, so
	// targeted wakes suffice.
	for i := range b.claims {
		m.wake(b.claims[i].slot)
	}
	return false
}

// conflictsBatch is conflicts over the union structure: a slot blocks
// the batch only past the batch's own claim count on it. The summary
// skip condition generalizes the single-mode "s <= 1 on the self word":
// a word whose summary does not exceed the batch's own claims on its
// slots holds no foreign claims and is skipped with one load.
func (m *mechV2) conflictsBatch(b *batchScan) bool {
	if !m.scanSummary.Load() {
		for _, r := range b.refs {
			if m.counts[r.slot].Load() > r.threshold {
				return true
			}
		}
		return false
	}
	for i := range b.words {
		wm := &b.words[i]
		if m.summary[wm.w].Load() <= b.ownClaimsInWord(wm.w) {
			continue
		}
		bs := wm.bits
		base := wm.w << 6
		for bs != 0 {
			slot := base + int32(bits.TrailingZeros64(bs))
			bs &= bs - 1
			if m.counts[slot].Load() > b.ownClaims(slot) {
				return true
			}
		}
	}
	return false
}

// acquireBatchContended is acquireContended for a batch: bounded
// adaptive retries sharing the mechanism's spin bound, then the
// blocking slow path.
func (m *mechV2) acquireBatchContended(b *batchScan, log []Acquisition) {
	bound, mn, mx := m.spinBound()
	for attempt := int32(1); attempt < bound; attempt++ {
		if m.tryAcquireBatch(b) {
			m.fastPath.Add(1)
			if bound < mx {
				m.spin.Store(bound + 1)
			}
			return
		}
	}
	if bound > mn {
		m.spin.Store(bound - 1)
	}
	m.slowAcquireBatch(b, log)
}

// slowAcquireBatch is slowAcquire for a batch: ONE waiter, registered
// with the union conflict mask, covers every constituent mode — a
// release on any conflicting slot wakes it, and it re-runs the whole
// claim-and-scan under mu. This is the point of the fused slow path:
// the sequential prologue would register (and wake, and deregister) up
// to one waiter per mode.
func (m *mechV2) slowAcquireBatch(b *batchScan, log []Acquisition) {
	m.slow.Add(1)
	w := m.getWaiter(b.words, log)
	m.mu.Lock()
	m.registerLocked(w)
	for {
		for _, s := range b.slots {
			m.claim(s)
		}
		if !m.conflictsBatch(b) {
			if b.bump {
				m.version.Add(1)
			}
			m.deregisterLocked(w)
			m.mu.Unlock()
			m.settleWait(w)
			putWaiter(w)
			return
		}
		for _, s := range b.slots {
			m.retreat(s)
		}
		// No signal after the retreat, for slowAcquire's reasons: the
		// scan ran under mu, so no other slow scanner saw the transient
		// claims.
		m.waits.Add(1)
		m.mu.Unlock()
		<-w.ch
		m.mu.Lock()
	}
}

// ---------------------------------------------------------------------
// Lock mechanism v1 (ablation A5)
// ---------------------------------------------------------------------

// mechanism is the original lock mechanism (Fig 20 as first built): an
// unpadded atomic counter per locking mode plus an internal lock whose
// condition variable broadcasts to every waiter on release. The
// acquisition protocol is increment-then-scan (Dekker style): a thread
// first makes its own claim visible, then scans the conflicting
// counters; under sequential consistency two conflicting acquirers
// cannot both miss each other, so at most the false-conflict case (both
// back off and retry serialized by the internal lock) occurs. Kept
// verbatim behind Semantic.DisableMechV2 so ablation A5 can quantify
// what the v2 layout, summary scan, and targeted wakeups buy.
type mechanism struct {
	mu      sync.Mutex
	cond    *sync.Cond
	waiters atomic.Int32
	counts  []atomic.Int32

	fastPath atomic.Uint64
	slow     atomic.Uint64
	waits    atomic.Uint64
	stalls   atomic.Uint64
}

func (m *mechanism) init(nModes int) {
	m.counts = make([]atomic.Int32, nModes)
	m.cond = sync.NewCond(&m.mu)
}

// conflicts reports whether any conflicting counter exceeds its
// threshold. The caller must already have incremented its own counter
// (thresholds account for that).
func (m *mechanism) conflicts(conf []conflictRef) bool {
	for _, c := range conf {
		if m.counts[c.slot].Load() > c.threshold {
			return true
		}
	}
	return false
}

func (m *mechanism) tryAcquire(slot int, conf []conflictRef) bool {
	m.counts[slot].Add(1)
	if !m.conflicts(conf) {
		return true
	}
	m.counts[slot].Add(-1)
	m.wakeWaiters()
	return false
}

func (m *mechanism) acquire(slot int, conf []conflictRef, noFastPath bool) {
	if !noFastPath {
		// Fast path (Fig 20 lines 3–4, adapted): claim, scan, retreat on
		// conflict. A couple of bounded retries absorb transient claims
		// by other threads that are themselves about to retreat.
		for attempt := 0; attempt < 2; attempt++ {
			if m.tryAcquire(slot, conf) {
				m.fastPath.Add(1)
				return
			}
		}
	}
	// Slow path: serialize claim-and-scan through the internal lock and
	// sleep on the condition variable while conflicts persist. waiters is
	// raised before the scan so that a releaser's decrement-then-check
	// either is seen by our scan or sees our waiter registration.
	m.slow.Add(1)
	m.mu.Lock()
	m.waiters.Add(1)
	for {
		m.counts[slot].Add(1)
		if !m.conflicts(conf) {
			m.waiters.Add(-1)
			m.mu.Unlock()
			return
		}
		m.counts[slot].Add(-1)
		m.waits.Add(1)
		m.cond.Wait()
	}
}

func (m *mechanism) release(slot int) {
	m.counts[slot].Add(-1)
	m.wakeWaiters()
}

// wakeWaiters broadcasts if any waiter might be blocked. The waiter
// increments waiters before re-scanning under mu, and we load waiters
// after our decrement, so either the waiter's scan sees the decrement or
// this load sees the waiter — a lost wakeup is impossible.
func (m *mechanism) wakeWaiters() {
	if m.waiters.Load() > 0 {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}

// acquireWithin is the v1 bounded acquisition: a claim-scan-retreat poll
// with exponential backoff until the deadline. The v1 mechanism's
// broadcast condition variable has no per-waiter channel to arm a timer
// on, so this ablation-only path polls instead of sleeping on the cond —
// coarser than v2's timer-armed select, but it preserves the same
// contract: acquired before the deadline, or a report of the conflicting
// holder slots observed at the moment of giving up.
func (m *mechanism) acquireWithin(slot int, conf []conflictRef, patience time.Duration, cancel <-chan struct{}) ([]stallSlot, acqOutcome) {
	m.slow.Add(1)
	deadline := time.Now().Add(patience)
	backoff := 50 * time.Microsecond
	for {
		m.counts[slot].Add(1)
		var out []stallSlot
		for _, c := range conf {
			if n := m.counts[c.slot].Load() - c.threshold; n > 0 {
				out = append(out, stallSlot{slot: int32(c.slot), count: n})
			}
		}
		if len(out) == 0 {
			return nil, acqOK // the claim stands: acquired
		}
		m.counts[slot].Add(-1)
		// Our transient claim may have bounced a concurrent scanner into
		// the cond wait; the broadcast path is cheap when nobody waits.
		m.wakeWaiters()
		// The poll loop has no channel to select on, so cancellation is
		// checked once per iteration — worst-case latency is one backoff
		// step (≤1ms), acceptable for the ablation-only path.
		select {
		case <-cancel:
			return nil, acqCanceled
		default:
		}
		if !time.Now().Before(deadline) {
			return out, acqStalled
		}
		m.waits.Add(1)
		time.Sleep(backoff)
		if backoff < time.Millisecond {
			backoff *= 2
		}
	}
}
