package core

import (
	"sync/atomic"
	"time"
)

// This file is the knob surface of the lock runtime: every tuning
// parameter the mechanisms used to hardcode as a package constant is
// now a per-mechanism (or per-instance) atomically-loaded setting, so
// the adaptive control plane (internal/controlplane) can retune a live
// runtime from telemetry without stopping it. The former constants
// remain as the defaults — a runtime nobody tunes behaves exactly as
// before, and the settings are read with plain atomic loads on paths
// that were already paying an atomic, so controller-off overhead is
// nil on the fast path.
//
// Torn-read discipline: each knob is either a single atomic cell or a
// set of values packed into one uint64 (the optimistic-gate quadruple),
// so a concurrent retune can never expose a half-updated parameter
// set. Knob changes are heuristics, not invariants — the mechanisms
// tolerate any interleaving of old and new values (a spin bound applies
// from the next contended acquisition, a gate window from the next
// close) — but a single read is always internally consistent.

// SpinBounds are the fast-path retry bounds of a mechanism: the
// adaptive per-mechanism retry count floats within [Min, Max]. The
// defaults reproduce the original constants (1 and 8).
type SpinBounds struct {
	Min int32 `json:"min"`
	Max int32 `json:"max"`
}

// DefaultSpinBounds are the bounds every mechanism starts with — the
// former minSpin/maxSpin constants.
func DefaultSpinBounds() SpinBounds { return SpinBounds{Min: minSpin, Max: maxSpin} }

// clamp normalizes a caller-supplied bounds pair into the representable
// range: 1 <= Min <= Max <= spinBoundCap.
func (b SpinBounds) clamp() SpinBounds {
	if b.Min < 1 {
		b.Min = 1
	}
	if b.Min > spinBoundCap {
		b.Min = spinBoundCap
	}
	if b.Max < b.Min {
		b.Max = b.Min
	}
	if b.Max > spinBoundCap {
		b.Max = spinBoundCap
	}
	return b
}

// spinBoundCap bounds how far a controller can raise the retry bound; a
// runaway tuner must not turn the fast path into an unbounded spin.
const spinBoundCap = 64

// SetSpinBounds retunes the fast-path retry bounds of every mechanism
// of the instance. Out-of-range values are clamped to [1, 64]. The
// bounds take effect on the next contended acquisition; the adaptive
// retry count itself keeps floating between them as before.
func (s *Semantic) SetSpinBounds(b SpinBounds) {
	b = b.clamp()
	for i := range s.mechs {
		s.mechs[i].spinMin.Store(b.Min)
		s.mechs[i].spinMax.Store(b.Max)
	}
}

// SpinBoundsNow returns the currently applied retry bounds (of the
// first mechanism; SetSpinBounds keeps all mechanisms in step).
func (s *Semantic) SpinBoundsNow() SpinBounds {
	if len(s.mechs) == 0 {
		return DefaultSpinBounds()
	}
	return SpinBounds{Min: s.mechs[0].spinMin.Load(), Max: s.mechs[0].spinMax.Load()}
}

// OptGateParams are the adaptive optimistic gate's tuning: validation
// outcomes are accounted in windows of Window attempts; a window whose
// failure share reaches DisableNum/DisableDen closes the optimistic
// path for ProbeInterval executions, after which a single probe
// decides whether to re-open. The defaults reproduce the original
// constants (64, 1/4, 8192).
type OptGateParams struct {
	Window        uint32 `json:"window"`
	DisableNum    uint32 `json:"disable_num"`
	DisableDen    uint32 `json:"disable_den"`
	ProbeInterval uint32 `json:"probe_interval"`
}

// DefaultOptGateParams returns the gate parameters every instance
// starts with.
func DefaultOptGateParams() OptGateParams {
	return OptGateParams{Window: optWindow, DisableNum: optDisableNum, DisableDen: optDisableDen, ProbeInterval: optProbeInterval}
}

// clamp normalizes gate parameters: a window of at least 2 (a 1-sample
// window closes on any failure and thrashes), a sane fraction, and a
// probe interval of at least the window (probing more often than the
// window closes would re-open the gate before it ever mattered).
func (p OptGateParams) clamp() OptGateParams {
	if p.Window < 2 {
		p.Window = 2
	}
	if p.Window > 1<<15 {
		p.Window = 1 << 15
	}
	if p.DisableDen == 0 {
		p.DisableDen = optDisableDen
	}
	if p.DisableNum == 0 || p.DisableNum > p.DisableDen {
		p.DisableNum = p.DisableDen // never disable below a full-failure window
	}
	if p.ProbeInterval < p.Window {
		p.ProbeInterval = p.Window
	}
	if p.ProbeInterval > 1<<30 {
		p.ProbeInterval = 1 << 30
	}
	return p
}

// packOptGate packs the quadruple into one uint64 so a retune is one
// atomic store and a hot-path read is one atomic load — no torn
// parameter sets, ever: window in bits 0–15, numerator 16–23,
// denominator 24–31, probe interval 32–63.
func packOptGate(p OptGateParams) uint64 {
	return uint64(p.Window)&0xffff |
		(uint64(p.DisableNum)&0xff)<<16 |
		(uint64(p.DisableDen)&0xff)<<24 |
		uint64(p.ProbeInterval)<<32
}

func unpackOptGate(v uint64) OptGateParams {
	return OptGateParams{
		Window:        uint32(v & 0xffff),
		DisableNum:    uint32(v >> 16 & 0xff),
		DisableDen:    uint32(v >> 24 & 0xff),
		ProbeInterval: uint32(v >> 32),
	}
}

// SetOptGateParams retunes the instance's adaptive optimistic gate.
// Out-of-range values are clamped (see OptGateParams.clamp). The new
// parameters govern the next window close and the next probe countdown;
// a window already accumulating finishes under whichever parameters its
// closer loads — both readings are internally consistent.
func (s *Semantic) SetOptGateParams(p OptGateParams) {
	s.optParams.Store(packOptGate(p.clamp()))
}

// OptimisticOpen reports whether the adaptive gate currently admits
// optimistic execution (no probe countdown in progress). Advisory: the
// state may change between this call and the next observation. Callers
// use it to pick a refusal strategy — an Observe refused under an open
// gate saw a transient conflicting holder and may be worth retrying
// after a backoff, while one refused by a closed gate should fall back
// to the pessimistic prologue immediately.
func (s *Semantic) OptimisticOpen() bool { return s.optGate.Load() == 0 }

// OptGateParamsNow returns the currently applied gate parameters.
func (s *Semantic) OptGateParamsNow() OptGateParams {
	return unpackOptGate(s.optParams.Load())
}

// SetSummaryScan switches the instance's mechanisms between
// summary-guided conflict scans and exact per-slot scans. Only
// mechanisms that MAINTAIN summary counters (the static compile-time
// decision, ModeTable summary activation at wide conflict masks) can
// scan them — maintenance keeps the over-approximation invariant alive
// continuously, which is what makes this toggle safe at any moment; a
// mechanism without maintained summaries ignores on=true. It reports
// whether any mechanism actually changed state.
func (s *Semantic) SetSummaryScan(on bool) bool {
	changed := false
	for i := range s.mechs {
		m := &s.mechs[i]
		want := on && m.maintainSummary
		if m.scanSummary.Swap(want) != want {
			changed = true
		}
	}
	return changed
}

// SummaryScanNow reports whether any mechanism currently scans its
// summary counters.
func (s *Semantic) SummaryScanNow() bool {
	for i := range s.mechs {
		if s.mechs[i].scanSummary.Load() {
			return true
		}
	}
	return false
}

// SummaryMaintained reports whether any mechanism maintains summary
// counters at all — the static upper bound on what SetSummaryScan(true)
// can enable.
func (s *Semantic) SummaryMaintained() bool {
	for i := range s.mechs {
		if s.mechs[i].maintainSummary {
			return true
		}
	}
	return false
}

// Knobs is one consistent-per-field snapshot of an instance's tunable
// parameters, exported for /debug/semlock and the controller's own
// introspection.
type Knobs struct {
	Spin        SpinBounds    `json:"spin"`
	OptGate     OptGateParams `json:"opt_gate"`
	SummaryScan bool          `json:"summary_scan"`
}

// KnobsNow returns the instance's current knob values.
func (s *Semantic) KnobsNow() Knobs {
	return Knobs{Spin: s.SpinBoundsNow(), OptGate: s.OptGateParamsNow(), SummaryScan: s.SummaryScanNow()}
}

// Tuner is the retuning surface the control plane drives: everything a
// feedback controller may adjust on one instance at runtime.
// *Semantic implements it; tests substitute fakes.
type Tuner interface {
	SetSpinBounds(SpinBounds)
	SetOptGateParams(OptGateParams)
	SetSummaryScan(bool) bool
	KnobsNow() Knobs
}

var _ Tuner = (*Semantic)(nil)

// ---------------------------------------------------------------------
// Process-wide knobs
// ---------------------------------------------------------------------

// modeMemoLimit is the effective size of the per-Txn mode-selection
// memo, within the fixed modeMemoSize backing array. Shrinking it makes
// lookups scan fewer entries (cheaper for workloads whose sections lock
// one or two sets); the slots past the limit are simply ignored and
// become valid again when the limit grows — memo entries are keyed on
// immutable state and can never go stale.
var modeMemoLimit atomic.Int32

func init() { modeMemoLimit.Store(modeMemoSize) }

// SetModeMemoLimit retunes the effective per-Txn mode-memo size,
// clamped to [1, 8]. Transactions pick the new limit up on their next
// memoized selection.
func SetModeMemoLimit(n int) {
	if n < 1 {
		n = 1
	}
	if n > modeMemoSize {
		n = modeMemoSize
	}
	modeMemoLimit.Store(int32(n))
}

// ModeMemoLimit returns the current effective mode-memo size.
func ModeMemoLimit() int { return int(modeMemoLimit.Load()) }

// waitTimingAt records when global wait-time sampling last transitioned
// off→on (unix nanos; 0 = never enabled). Waiters already parked at
// that moment carry no timestamp of their own; their settle and the
// watchdog sampler use this as the same ">=" lower bound that
// Watchdog.Watch's watchedAt provides — a waiter demonstrably parked
// before the gate opened has waited at least since the gate opened.
var waitTimingAt atomic.Int64

// SetWaitTiming turns global wait-time sampling on or off. The
// telemetry layer calls this when a metrics consumer attaches, and the
// adaptive control plane toggles it from stall history; a
// Watchdog.Watch enables sampling per instance regardless of this
// switch. Waiters already parked when sampling turns on have no
// park-time timestamp; they settle with a lower bound measured from the
// enable instant (see mechV2.settleWait), so a mid-run enable feeds the
// telemetry consumers conservative nonzero samples instead of zeros.
func SetWaitTiming(on bool) {
	if on {
		if !waitSampling.Swap(true) {
			waitTimingAt.Store(time.Now().UnixNano())
		}
		return
	}
	waitSampling.Store(false)
}

// WaitTimingEnabled reports whether global wait-time sampling is on.
func WaitTimingEnabled() bool { return waitSampling.Load() }
