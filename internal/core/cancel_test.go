package core

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// Tests for the cancellable bounded-acquisition path (AcquireWithinCancel
// / LockWithinCancel) and the unified stall-observer hook. The cancel
// tests are named TestChaos* so CI's chaos job (-run Chaos) selects
// them: cancellation shares the timeout path's teardown machinery, and
// the races it can lose are the same ones.

// TestChaosCancelWithdrawsCleanly: closing the cancel channel while a
// bounded acquisition is parked must return ErrCanceled promptly and
// leave no trace — no registered waiter, no leaked claim, no stranded
// free-list entry. Both mechanism generations.
func TestChaosCancelWithdrawsCleanly(t *testing.T) {
	for _, v1 := range []bool{false, true} {
		name := "v2"
		if v1 {
			name = "v1"
		}
		t.Run(name, func(t *testing.T) {
			tbl := mapTable(t, 1, TableOptions{})
			s := NewSemantic(tbl)
			s.DisableMechV2 = v1
			km := keyMode(tbl, 5)
			s.Acquire(km)

			cancel := make(chan struct{})
			done := make(chan error, 1)
			go func() { done <- s.AcquireWithinCancel(km, time.Minute, cancel) }()

			deadline := time.Now().Add(10 * time.Second)
			for s.Stats().Waits < 1 {
				if time.Now().After(deadline) {
					t.Fatalf("waiter never blocked: %+v", s.Stats())
				}
				time.Sleep(time.Millisecond)
			}
			close(cancel)
			select {
			case err := <-done:
				if !errors.Is(err, ErrCanceled) {
					t.Fatalf("want ErrCanceled, got %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("canceled waiter never returned")
			}

			// A canceled acquisition is not a stall: the caller left.
			if st := s.Stats().Stalls; st != 0 {
				t.Errorf("cancel counted as stall: %d", st)
			}
			s.Release(km)
			if err := s.CheckQuiesced(); err != nil {
				t.Fatal(err)
			}
			if n := WaitersOutstanding(); n != 0 {
				t.Fatalf("waiter free-list leaked: %d outstanding", n)
			}

			// A nil cancel is exactly AcquireWithin: acquisition succeeds
			// when uncontended.
			if err := s.AcquireWithinCancel(km, time.Second, nil); err != nil {
				t.Fatalf("nil-cancel acquisition: %v", err)
			}
			s.Release(km)
		})
	}
}

// TestChaosLockWithinCancelLeavesTxnUntouched: a canceled LockWithinCancel
// must leave the transaction exactly as it was — earlier holds intact,
// nothing recorded for the canceled acquisition.
func TestChaosLockWithinCancelLeavesTxnUntouched(t *testing.T) {
	tbl := mapTable(t, 1, TableOptions{})
	s := NewSemantic(tbl)
	other := NewSemantic(tbl)
	km := keyMode(tbl, 2)
	s.Acquire(km)

	tx := NewCheckedTxn()
	tx.Lock(other, keyMode(tbl, 1), 0)

	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- tx.LockWithinCancel(s, km, 1, time.Minute, cancel) }()
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Waits < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("waiter never blocked: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(cancel)
	if err := <-done; !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if tx.HeldCount() != 1 {
		t.Errorf("canceled LockWithinCancel changed holds: %d", tx.HeldCount())
	}
	tx.UnlockAll()
	s.Release(km)
	if err := s.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosCancelReleaseRace hammers cancellation against releases and
// timeouts landing together, the same window the wake-token re-donation
// covers: whatever interleaving occurs, every round must end quiescent
// with nothing leaked. Run under -race.
func TestChaosCancelReleaseRace(t *testing.T) {
	for _, v1 := range []bool{false, true} {
		name := "v2"
		if v1 {
			name = "v1"
		}
		t.Run(name, func(t *testing.T) {
			tbl := mapTable(t, 1, TableOptions{})
			s := NewSemantic(tbl)
			s.DisableMechV2 = v1
			km := keyMode(tbl, 1)
			rounds := 300
			if testing.Short() {
				rounds = 50
			}
			for r := 0; r < rounds; r++ {
				s.Acquire(km)
				cancel := make(chan struct{})
				var wg sync.WaitGroup
				for w := 0; w < 3; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						patience := time.Duration(200+(r*7+w*131)%1800) * time.Microsecond
						if err := s.AcquireWithinCancel(km, patience, cancel); err == nil {
							s.Release(km)
						}
					}(w)
				}
				// Sweep the cancel across the waiters' deadlines and the
				// release as rounds advance.
				time.Sleep(time.Duration((r*11)%1500) * time.Microsecond)
				close(cancel)
				time.Sleep(time.Duration((r*5)%500) * time.Microsecond)
				s.Release(km)
				wg.Wait()
				if err := s.CheckQuiesced(); err != nil {
					t.Fatalf("round %d: %v", r, err)
				}
			}
			if n := WaitersOutstanding(); n != 0 {
				t.Fatalf("waiter free-list leaked: %d outstanding", n)
			}
		})
	}
}

// TestStallObserverUnifiedClock: both stall clocks — the timeout path's
// self-clocked StallError and the watchdog's threshold scan — must feed
// the single process-wide observer, tagged by source, for the same
// instance and mechanism.
func TestStallObserverUnifiedClock(t *testing.T) {
	var mu sync.Mutex
	var events []StallEvent
	prev := SetStallObserver(func(ev StallEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	defer SetStallObserver(prev)

	tbl := mapTable(t, 1, TableOptions{})
	s := NewSemantic(tbl)
	km := keyMode(tbl, 4)
	s.Acquire(km)

	// Clock one: bounded acquisition times out.
	patience := 10 * time.Millisecond
	if err := s.AcquireWithin(km, patience); err == nil {
		t.Fatal("acquisition against a live holder succeeded")
	}

	// Clock two: watchdog finds a parked waiter past threshold.
	d := NewWatchdog(WatchdogConfig{Threshold: 5 * time.Millisecond})
	d.Watch(s)
	blocked := make(chan error, 1)
	go func() { blocked <- s.AcquireWithin(km, time.Minute) }()
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Waits < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("waiter never blocked: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	if n := len(d.Scan()); n == 0 {
		t.Fatal("watchdog scan found no stalled mechanism")
	}
	s.Release(km)
	if err := <-blocked; err != nil {
		t.Fatalf("parked waiter after release: %v", err)
	}
	s.Release(km)

	mu.Lock()
	defer mu.Unlock()
	var timeouts, watchdogs int
	for _, ev := range events {
		if ev.Instance != s.ID() {
			t.Errorf("event for unexpected instance %d", ev.Instance)
		}
		switch ev.Source {
		case StallTimeout:
			timeouts++
			if ev.Waiters != 1 {
				t.Errorf("timeout event Waiters = %d, want 1", ev.Waiters)
			}
			if ev.Waited < patience {
				t.Errorf("timeout event Waited = %v, below patience %v", ev.Waited, patience)
			}
		case StallWatchdog:
			watchdogs++
			if ev.Waiters < 1 {
				t.Errorf("watchdog event Waiters = %d, want >=1", ev.Waiters)
			}
		}
	}
	if timeouts != 1 {
		t.Errorf("timeout events = %d, want 1", timeouts)
	}
	if watchdogs < 1 {
		t.Errorf("watchdog events = %d, want >=1", watchdogs)
	}
}
