package core

import (
	"fmt"
	"sort"
)

// MethodSig describes one method of an ADT's standard API: its name and
// the number of (non-receiver) arguments.
type MethodSig struct {
	Name  string
	Arity int
}

// Spec is a commutativity specification for one ADT class (§5.2, Fig 3b):
// for every pair of methods it records a condition under which operations
// of those methods commute. Lookups are order-insensitive: the condition
// stored for (m1, m2) is automatically swapped when queried as (m2, m1).
//
// A Spec also lists the ADT's method signatures, which the synthesizer
// uses to build the generic "lock everything" symbolic set of §3.
type Spec struct {
	ADT       string
	methods   []MethodSig
	byName    map[string]int
	conds     map[[2]string]Cond
	observers map[string]bool
}

// NewSpec creates an empty specification for the named ADT class with the
// given method signatures. Pairs without an explicit condition default to
// Never (conservative: not provably commutative).
func NewSpec(adt string, methods ...MethodSig) *Spec {
	s := &Spec{
		ADT:       adt,
		methods:   append([]MethodSig(nil), methods...),
		byName:    make(map[string]int, len(methods)),
		conds:     make(map[[2]string]Cond),
		observers: make(map[string]bool),
	}
	for i, m := range methods {
		if _, dup := s.byName[m.Name]; dup {
			panic(fmt.Sprintf("core: duplicate method %q in spec %q", m.Name, adt))
		}
		s.byName[m.Name] = i
	}
	return s
}

// Methods returns the ADT's method signatures in declaration order.
func (s *Spec) Methods() []MethodSig { return s.methods }

// Method returns the signature of the named method.
func (s *Spec) Method(name string) (MethodSig, bool) {
	i, ok := s.byName[name]
	if !ok {
		return MethodSig{}, false
	}
	return s.methods[i], true
}

// Commute records that operations of m1 and m2 commute when cond holds.
// cond's first-operation arguments refer to m1, second to m2. Recording
// (m1, m2) also answers queries for (m2, m1) via the swapped condition.
func (s *Spec) Commute(m1, m2 string, cond Cond) *Spec {
	s.mustHave(m1)
	s.mustHave(m2)
	s.conds[[2]string{m1, m2}] = cond
	return s
}

// Observer declares methods as observers: operations that read the
// abstract state without modifying it (get, contains, size, ...). The
// declaration is trusted input to the synthesizer's optimistic
// certification — a section is eligible for lock-free optimistic
// execution (ir.Optimistic) only if every ADT call in it is a declared
// observer — so declare a method only if it has no effect on any
// subsequent operation's result. Note that observer status is about
// abstract-state purity, not commutativity: observers may still
// conflict with mutators (get vs put on one key), which is exactly what
// the version-counter validation detects at run time.
func (s *Spec) Observer(methods ...string) *Spec {
	for _, m := range methods {
		s.mustHave(m)
		s.observers[m] = true
	}
	return s
}

// IsObserver reports whether the named method is declared an observer.
func (s *Spec) IsObserver(method string) bool { return s.observers[method] }

func (s *Spec) mustHave(m string) {
	if _, ok := s.byName[m]; !ok {
		panic(fmt.Sprintf("core: spec %q has no method %q", s.ADT, m))
	}
}

// Cond returns the commutativity condition for the method pair (m1, m2).
// Missing entries default to Never.
func (s *Spec) Cond(m1, m2 string) Cond {
	if c, ok := s.conds[[2]string{m1, m2}]; ok {
		return c
	}
	if c, ok := s.conds[[2]string{m2, m1}]; ok {
		return c.Swapped()
	}
	return Never
}

// OpsCommute evaluates the specification on two concrete runtime
// operations. A condition entry is a SUFFICIENT condition for
// commutation, and commutation itself is symmetric, so the operations
// commute when the condition holds in either direction. (For the
// symmetric conditions of Fig 3(b) the two directions coincide.)
func (s *Spec) OpsCommute(o1, o2 Op) bool {
	if s.Cond(o1.Method, o2.Method).Holds(o1.Args, o2.Args) {
		return true
	}
	return s.Cond(o2.Method, o1.Method).Holds(o2.Args, o1.Args)
}

// AllOpsSet returns the generic symbolic set containing every method of
// the ADT with all arguments * — the paper's "lock(+)" of §3, e.g.
// {add(*),remove(*),contains(*),size(),clear()} for the Set ADT.
func (s *Spec) AllOpsSet() SymSet {
	ops := make([]SymOp, len(s.methods))
	for i, m := range s.methods {
		args := make([]SymArg, m.Arity)
		for j := range args {
			args[j] = Star()
		}
		ops[i] = SymOpOf(m.Name, args...)
	}
	return SymSetOf(ops...)
}

// Validate performs sanity checks useful in tests: every condition's
// argument indices must be within the arities of the methods it relates,
// and self-pairs must be present for methods expected to self-commute.
// It returns all problems found.
func (s *Spec) Validate() []error {
	var errs []error
	for key, c := range s.conds {
		m1, ok1 := s.Method(key[0])
		m2, ok2 := s.Method(key[1])
		if !ok1 || !ok2 {
			errs = append(errs, fmt.Errorf("spec %s: condition for unknown pair %v", s.ADT, key))
			continue
		}
		if err := checkCondArity(c, m1.Arity, m2.Arity); err != nil {
			errs = append(errs, fmt.Errorf("spec %s: pair (%s,%s): %w", s.ADT, key[0], key[1], err))
		}
	}
	return errs
}

func checkCondArity(c Cond, a1, a2 int) error {
	switch x := c.(type) {
	case condNE:
		if x.i >= a1 || x.j >= a2 {
			return fmt.Errorf("argsNE(%d,%d) out of range for arities (%d,%d)", x.i, x.j, a1, a2)
		}
	case condEQ:
		if x.i >= a1 || x.j >= a2 {
			return fmt.Errorf("argsEQ(%d,%d) out of range for arities (%d,%d)", x.i, x.j, a1, a2)
		}
	case condLT:
		if x.i >= a1 || x.j >= a2 {
			return fmt.Errorf("argsLT(%d,%d) out of range for arities (%d,%d)", x.i, x.j, a1, a2)
		}
	case condGTView:
		if x.i >= a1 || x.j >= a2 {
			return fmt.Errorf("argsGT(%d,%d) out of range for arities (%d,%d)", x.i, x.j, a1, a2)
		}
	case condAnd:
		for _, sub := range x.cs {
			if err := checkCondArity(sub, a1, a2); err != nil {
				return err
			}
		}
	case condOr:
		for _, sub := range x.cs {
			if err := checkCondArity(sub, a1, a2); err != nil {
				return err
			}
		}
	}
	return nil
}

// MethodNames returns the sorted method names (handy for deterministic
// iteration in reports).
func (s *Spec) MethodNames() []string {
	names := make([]string, 0, len(s.byName))
	for n := range s.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
