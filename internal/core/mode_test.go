package core

import (
	"testing"
)

func TestInstantiateConstantSet(t *testing.T) {
	phi := NewPhi(4)
	set := SymSetOf(SymOpOf("add", Star()), SymOpOf("remove", ConstArg(3)))
	modes := InstantiateModes(set, phi)
	if len(modes) != 1 {
		t.Fatalf("constant set yields %d modes, want 1", len(modes))
	}
	if got := modes[0].Key(); got != "{add(*),remove(3)}" {
		t.Errorf("mode = %s", got)
	}
}

// TestInstantiateVariableSet follows §5.1's example: with n = 2 the set
// {add(i), remove(j)} yields 4 locking modes.
func TestInstantiateVariableSet(t *testing.T) {
	phi := NewPhi(2)
	set := SymSetOf(SymOpOf("add", VarArg("i")), SymOpOf("remove", VarArg("j")))
	modes := InstantiateModes(set, phi)
	if len(modes) != 4 {
		t.Fatalf("got %d modes, want 4 (n^k = 2^2)", len(modes))
	}
	seen := map[string]bool{}
	for _, m := range modes {
		seen[m.Key()] = true
	}
	for _, want := range []string{
		"{add(α1),remove(α1)}",
		"{add(α1),remove(α2)}",
		"{add(α2),remove(α1)}",
		"{add(α2),remove(α2)}",
	} {
		if !seen[want] {
			t.Errorf("missing mode %s; got %v", want, seen)
		}
	}
}

// TestInstantiateSharedVariable checks that one variable used in several
// positions receives the same abstract value in every mode, preserving
// intra-set equalities like {get(id),put(id,*),remove(id)}.
func TestInstantiateSharedVariable(t *testing.T) {
	phi := NewPhi(3)
	set := SymSetOf(
		SymOpOf("get", VarArg("id")),
		SymOpOf("put", VarArg("id"), Star()),
		SymOpOf("remove", VarArg("id")),
	)
	modes := InstantiateModes(set, phi)
	if len(modes) != 3 {
		t.Fatalf("got %d modes, want 3 (one variable, n=3)", len(modes))
	}
	for _, m := range modes {
		var abs = -1
		for _, op := range m.Ops {
			for _, a := range op.Args {
				if a.Kind == ModeAbs {
					if abs == -1 {
						abs = a.Abs
					} else if a.Abs != abs {
						t.Errorf("mode %s assigns different buckets to one variable", m)
					}
				}
			}
		}
	}
}

func TestModeForValues(t *testing.T) {
	phi := NewFixedPhi(2, 1, map[Value]int{7: 0})
	set := SymSetOf(SymOpOf("add", VarArg("i")), SymOpOf("remove", VarArg("j")))
	m := ModeForValues(set, phi, map[string]Value{"i": 7, "j": 9})
	if got := m.Key(); got != "{add(α1),remove(α2)}" {
		t.Errorf("mode = %s, want {add(α1),remove(α2)}", got)
	}
}

func TestModeForValuesMissingVarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("missing variable must panic")
		}
	}()
	ModeForValues(SymSetOf(SymOpOf("add", VarArg("i"))), NewPhi(2), nil)
}

func TestModeCovers(t *testing.T) {
	phi := NewFixedPhi(2, 1, map[Value]int{7: 0})
	m := ModeOf(ModeOpOf("add", MAbs(0)), ModeOpOf("remove", MConst(3)))
	if !m.Covers(NewOp("add", 7), phi) {
		t.Error("add(7) in bucket α1 should be covered by add(α1)")
	}
	if m.Covers(NewOp("add", 9), phi) {
		t.Error("add(9) in bucket α2 must not be covered by add(α1)")
	}
	if !m.Covers(NewOp("remove", 3), phi) {
		t.Error("remove(3) should be covered by remove(3)")
	}
	if m.Covers(NewOp("remove", 4), phi) {
		t.Error("remove(4) must not be covered by remove(3)")
	}
	star := ModeOf(ModeOpOf("put", MAbs(1), MStar()))
	if !star.Covers(NewOp("put", 9, "anything"), phi) {
		t.Error("put(9,·) should be covered by put(α2,*)")
	}
}

// TestModesCommuteSetADT spot-checks ModesCommute against Fig 3(b)
// semantics at the mode level.
func TestModesCommuteSetADT(t *testing.T) {
	spec := setSpec()
	phi := NewPhi(2)
	addStar := ModeOf(ModeOpOf("add", MStar()))
	sizeClear := ModeOf(ModeOpOf("size"), ModeOpOf("clear"))
	if !ModesCommute(spec, addStar, addStar, phi) {
		t.Error("{add(*)} must self-commute (Example 2.4)")
	}
	if ModesCommute(spec, addStar, sizeClear, phi) {
		t.Error("{add(*)} vs {size(),clear()} must conflict (Example 2.4)")
	}
	a1 := ModeOf(ModeOpOf("add", MAbs(0)))
	r2 := ModeOf(ModeOpOf("remove", MAbs(1)))
	r1 := ModeOf(ModeOpOf("remove", MAbs(0)))
	if !ModesCommute(spec, a1, r2, phi) {
		t.Error("add(α1) vs remove(α2) commute — disjoint buckets")
	}
	if ModesCommute(spec, a1, r1, phi) {
		t.Error("add(α1) vs remove(α1) must conflict — same bucket")
	}
}

func TestModeKeyNormalization(t *testing.T) {
	a := ModeOf(ModeOpOf("remove", MAbs(0)), ModeOpOf("add", MAbs(1)))
	b := ModeOf(ModeOpOf("add", MAbs(1)), ModeOpOf("remove", MAbs(0)))
	if a.Key() != b.Key() {
		t.Errorf("mode keys differ: %s vs %s", a, b)
	}
}
