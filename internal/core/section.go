package core

import (
	"fmt"
	"sync"

	"repro/internal/padded"
)

// This file makes atomic sections panic-safe: Atomically guarantees that
// a section which panics (or calls Txn.Abort) releases every held
// Semantic lock before the panic escapes, so a fault inside one section
// can never park conflicting waiters forever. The synthesized code in
// *_semlock.go files wraps every section body in Atomically, making
// generated sections panic-safe by construction.

// SectionPanic wraps a panic that escaped an atomic section. The
// deferred epilogue has already released every lock the section held;
// the wrapper carries what the section had acquired so the fault is
// diagnosable after the unwinding.
type SectionPanic struct {
	// Value is the original panic value.
	Value any
	// HeldAtPanic is how many instance locks the section held when the
	// panic fired. All of them were released before re-panicking.
	HeldAtPanic int
	// Log is the section's acquisition log at the time of the panic
	// (checked transactions only; nil otherwise).
	Log []Acquisition
}

func (p *SectionPanic) Error() string {
	return fmt.Sprintf("core: panic escaped atomic section holding %d lock(s) (all released): %v",
		p.HeldAtPanic, p.Value)
}

// Unwrap exposes the original panic value when it was an error, so
// errors.Is/As see through the section wrapper.
func (p *SectionPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// sectionPanics and sectionAborts are process-wide telemetry counters
// for the two abnormal section exits: panics that escaped a section
// (re-raised as *SectionPanic after the epilogue released its locks)
// and Txn.Abort calls swallowed by their own Atomically frame. Padded
// cells: the counters sit on the Atomically unwinding path, which chaos
// workloads hit from many goroutines at once.
var (
	sectionPanics padded.Uint64
	sectionAborts padded.Uint64
)

// SectionPanicsRecovered returns how many panics have escaped atomic
// sections process-wide. Every one of them had its section's locks
// released by the Atomically epilogue before re-panicking.
func SectionPanicsRecovered() uint64 { return sectionPanics.Load() }

// SectionAborts returns how many Txn.Abort calls have been absorbed by
// their enclosing Atomically process-wide.
func SectionAborts() uint64 { return sectionAborts.Load() }

// sectionAbort is the sentinel Txn.Abort panics with. It carries the
// aborting transaction so nested sections on distinct transactions abort
// independently: only the Atomically frame running that transaction
// swallows it.
type sectionAbort struct{ t *Txn }

// Abort abandons the current atomic section: the enclosing Atomically
// releases every held lock and returns normally. Calling Abort outside
// an Atomically section panics with an unrecognized sentinel (caught by
// nothing), which is the correct failure mode — there is no section to
// abort.
func (t *Txn) Abort() {
	panic(&sectionAbort{t: t})
}

// Atomically runs fn as one atomic section on t with a guaranteed
// epilogue: every lock fn acquired is released when fn returns, panics,
// or aborts. A panic re-panics as *SectionPanic carrying the section's
// acquisition state; Txn.Abort returns normally. This is the panic-safe
// form of the §3.1 prologue/epilogue pair.
func (t *Txn) Atomically(fn func(*Txn)) {
	defer func() {
		heldAtPanic := len(t.held)
		t.UnlockAll()
		switch r := recover().(type) {
		case nil:
			// Normal return; epilogue already ran.
		case *sectionAbort:
			if r.t == t {
				sectionAborts.Add(1)
				return // our own abort: swallow, locks already released
			}
			panic(r) // some outer section's abort; keep unwinding
		default:
			var log []Acquisition
			if len(t.log) > 0 {
				log = append(log, t.log...)
			}
			sectionPanics.Add(1)
			panic(&SectionPanic{Value: r, HeldAtPanic: heldAtPanic, Log: log})
		}
	}()
	fn(t)
}

// txnPool recycles transactions for the package-level Atomically so a
// synthesized section allocates nothing in steady state.
var txnPool = sync.Pool{New: func() any { return NewTxn() }}

// Atomically runs fn as one atomic section on a pooled transaction. The
// transaction is returned to the pool on every exit path — normal
// return, Txn.Abort, or panic — and its locks are always released
// first. Generated *_semlock.go code uses this as the section wrapper.
func Atomically(fn func(*Txn)) {
	t := txnPool.Get().(*Txn)
	defer func() {
		// Runs after t.Atomically's own deferred epilogue, so no locks are
		// held here even when unwinding; Reset cannot panic.
		t.Reset()
		txnPool.Put(t)
	}()
	t.Atomically(fn)
}
