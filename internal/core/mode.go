package core

import (
	"fmt"
	"sort"
	"strings"
)

// ModeArgKind discriminates the argument forms appearing in a locking
// mode: the wildcard *, an abstract value α_i, or a constant (§5.1).
type ModeArgKind uint8

const (
	// ModeStar represents all values.
	ModeStar ModeArgKind = iota
	// ModeAbs represents the φ-bucket of an abstract value.
	ModeAbs
	// ModeConst represents a single literal value.
	ModeConst
)

// ModeArg is one argument position of a mode operation.
type ModeArg struct {
	Kind ModeArgKind
	Abs  int   // valid when Kind == ModeAbs
	Val  Value // valid when Kind == ModeConst
}

// MStar returns the wildcard mode argument.
func MStar() ModeArg { return ModeArg{Kind: ModeStar} }

// MAbs returns the abstract-value mode argument α_i.
func MAbs(i int) ModeArg { return ModeArg{Kind: ModeAbs, Abs: i} }

// MConst returns the constant mode argument.
func MConst(v Value) ModeArg { return ModeArg{Kind: ModeConst, Val: v} }

// String renders the argument: "*", "α3", or the constant.
func (a ModeArg) String() string {
	switch a.Kind {
	case ModeStar:
		return "*"
	case ModeAbs:
		return fmt.Sprintf("α%d", a.Abs+1)
	default:
		return fmt.Sprint(a.Val)
	}
}

// coversValue reports whether the mode argument's denotation contains the
// runtime value v under φ.
func (a ModeArg) coversValue(v Value, phi Phi) bool {
	switch a.Kind {
	case ModeStar:
		return true
	case ModeAbs:
		return phi.Abstract(v) == a.Abs
	default:
		return a.Val == v
	}
}

// ModeOp is one operation pattern of a locking mode, e.g. add(α1) or
// put(α2,*) or add(5).
type ModeOp struct {
	Method string
	Args   []ModeArg
}

// ModeOpOf builds a mode operation.
func ModeOpOf(method string, args ...ModeArg) ModeOp {
	return ModeOp{Method: method, Args: args}
}

// String renders the mode op, e.g. "add(α1)".
func (m ModeOp) String() string {
	parts := make([]string, len(m.Args))
	for i, a := range m.Args {
		parts[i] = a.String()
	}
	return m.Method + "(" + strings.Join(parts, ",") + ")"
}

// Covers reports whether the mode op's denotation contains runtime
// operation op under φ.
func (m ModeOp) Covers(op Op, phi Phi) bool {
	if m.Method != op.Method || len(m.Args) != len(op.Args) {
		return false
	}
	for i, a := range m.Args {
		if !a.coversValue(op.Args[i], phi) {
			return false
		}
	}
	return true
}

// Mode is a locking mode (§5.1): a finite description of a set of runtime
// operations. A transaction holding a mode holds locks on every operation
// the mode represents. Modes generalize read/write lock modes.
type Mode struct {
	Ops []ModeOp
}

// ModeOf builds a mode from operation patterns, normalized for stable
// string keys.
func ModeOf(ops ...ModeOp) Mode {
	m := Mode{Ops: append([]ModeOp(nil), ops...)}
	sort.Slice(m.Ops, func(i, j int) bool { return m.Ops[i].String() < m.Ops[j].String() })
	return m
}

// Key returns a canonical string usable as a map key.
func (m Mode) Key() string {
	parts := make([]string, len(m.Ops))
	for i, op := range m.Ops {
		parts[i] = op.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// String renders the mode as in Fig 19, e.g. "{add(α1),remove(α2)}".
func (m Mode) String() string { return m.Key() }

// Covers reports whether the mode's denotation contains op under φ.
func (m Mode) Covers(op Op, phi Phi) bool {
	for _, mo := range m.Ops {
		if mo.Covers(op, phi) {
			return true
		}
	}
	return false
}

// ModesCommute computes whether every operation represented by mode a
// commutes with every operation represented by mode b, per the
// specification and φ — one entry of the commutativity function F_c
// (§5.2). It is conservative: false means "not provably commutative".
// As with OpsCommute, a pair is guaranteed commutative when either
// direction's (sufficient) condition definitely holds, which keeps F_c
// symmetric even for asymmetric self-pair conditions.
func ModesCommute(spec *Spec, a, b Mode, phi Phi) bool {
	for _, oa := range a.Ops {
		for _, ob := range b.Ops {
			if spec.Cond(oa.Method, ob.Method).Definitely(oa.Args, ob.Args, phi) {
				continue
			}
			if spec.Cond(ob.Method, oa.Method).Definitely(ob.Args, oa.Args, phi) {
				continue
			}
			return false
		}
	}
	return true
}

// InstantiateModes expands a symbolic set into the locking modes it can
// denote at runtime (§5.1):
//
//   - a constant symbolic set yields exactly one mode (constants and *
//     carry over unchanged);
//   - a variable symbolic set with variables v_1..v_k yields one mode per
//     assignment of abstract values to the variables — n^k modes for
//     n = phi.N() — so every runtime instantiation of the set is
//     represented by one of the modes.
//
// The same variable occurring in several argument positions receives the
// same abstract value in each mode, which preserves intra-set equalities
// such as {get(id), put(id,*), remove(id)}.
func InstantiateModes(set SymSet, phi Phi) []Mode {
	vars := set.Vars()
	if len(vars) == 0 {
		return []Mode{modeFromAssignment(set, nil)}
	}
	n := phi.N()
	total := 1
	for range vars {
		total *= n
	}
	modes := make([]Mode, 0, total)
	assign := make(map[string]int, len(vars))
	var rec func(i int)
	rec = func(i int) {
		if i == len(vars) {
			modes = append(modes, modeFromAssignment(set, assign))
			return
		}
		for b := 0; b < n; b++ {
			assign[vars[i]] = b
			rec(i + 1)
		}
	}
	rec(0)
	return modes
}

// ModeForValues returns the mode obtained from a symbolic set by mapping
// each variable's runtime value through φ — the dynamic mode selection of
// §5.1 ("t1 = φ(i); t2 = φ(j); l = the locking mode ...").
func ModeForValues(set SymSet, phi Phi, env map[string]Value) Mode {
	vars := set.Vars()
	assign := make(map[string]int, len(vars))
	for _, v := range vars {
		val, ok := env[v]
		if !ok {
			panic(fmt.Sprintf("core: ModeForValues: no runtime value for variable %q", v))
		}
		assign[v] = phi.Abstract(val)
	}
	return modeFromAssignment(set, assign)
}

func modeFromAssignment(set SymSet, assign map[string]int) Mode {
	ops := make([]ModeOp, len(set))
	for i, so := range set {
		args := make([]ModeArg, len(so.Args))
		for j, a := range so.Args {
			switch a.Kind {
			case SymStar:
				args[j] = MStar()
			case SymConst:
				args[j] = MConst(a.Val)
			case SymVar:
				args[j] = MAbs(assign[a.Var])
			}
		}
		ops[i] = ModeOp{Method: so.Method, Args: args}
	}
	return ModeOf(ops...)
}
