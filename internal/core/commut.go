package core

import (
	"fmt"
	"math/bits"
	"sort"
)

// ModeID identifies a locking mode within a ModeTable. Mode identity is
// the instantiated (raw) mode — the one whose denotation covers the
// transaction's operations. Indistinguishable modes (§5.3, opt. 1) share
// a lock-mechanism counter internally but keep distinct ModeIDs, because
// coverage (which operations a holder may invoke) differs even when
// conflict behaviour does not.
type ModeID int

// TableOptions configures mode-table compilation.
type TableOptions struct {
	// Phi is the abstract-value hash (§5.1). Nil defaults to
	// NewPhi(DefaultAbstractValues).
	Phi Phi
	// MaxModes is the parameter N of §5.3 (opt. 3): the maximum number of
	// raw locking modes per ADT class. If instantiation would exceed it,
	// the table coarsens φ (halving the number of abstract values) until
	// the bound holds. Zero defaults to 4096.
	MaxModes int
	// DisablePartitioning turns off lock partitioning (§5.2) so that a
	// single mechanism guards all modes — ablation A3.
	DisablePartitioning bool
	// DisableMerging turns off indistinguishable-mode merging (§5.3,
	// opt. 1) — used by tests that inspect raw modes.
	DisableMerging bool
}

// setEntry is the per-symbolic-set lookup structure for dynamic mode
// selection (§5.1): the set's variables in canonical order and a dense
// table mapping each assignment of abstract values to the canonical mode.
type setEntry struct {
	set   SymSet
	vars  []string
	modes []ModeID // len == n^len(vars); index = Σ assign[i]·n^i
}

// ModeTable is the compiled locking-mode structure for one ADT class:
// the canonical modes, the commutativity function F_c over them (Fig 19),
// the partition of modes into independent lock mechanisms (§5.2), and
// per-symbolic-set dynamic lookup tables.
type ModeTable struct {
	Spec *Spec

	phi    Phi
	modes  []Mode   // all instantiated modes, indexed by ModeID
	fc     [][]bool // F_c over modes
	canon  []int    // mode → canonical (merged) index
	nCanon int
	sets   []setEntry
	setIdx map[string]int // SymSet key → index into sets

	// Partitioning: part[m] is the mechanism index for mode m, or -1
	// when the mode conflicts with nothing (including itself) and needs
	// no mechanism at all. localIdx[m] is the counter slot of m's
	// canonical mode within its mechanism (merged modes share a slot).
	part      []int
	localIdx  []int
	partSizes []int
	// summaryOn[p] is the static per-mechanism decision to maintain
	// per-word summary counters: it is worth two extra atomic RMWs per
	// acquire/release cycle only when some mode in the mechanism has a
	// wide conflict mask (a wildcard such as size() or clear()) whose
	// exact scan would touch many padded counter lines. Small
	// fine-grained mechanisms — the common case after partitioning —
	// skip summaries entirely and scan exactly, keeping the uncontended
	// fast path at one RMW, the same as the v1 mechanism.
	summaryOn []bool
	// conflict[m] lists the (local) counter slots mode m conflicts with
	// inside its own mechanism, with the count threshold above which the
	// slot blocks m (1 for m's own slot, 0 otherwise). The v1 mechanism
	// (ablation A5) scans these directly; the v2 mechanism scans the
	// word-bitset form in masks[m].
	conflict [][]conflictRef
	masks    []maskInfo
}

type conflictRef struct {
	slot      int
	threshold int32
}

// wordMask is one 64-slot word of a mode's conflict bitset: the index
// of the word in the mechanism's summary array plus the conflicting
// local slots within that word, one bit per slot.
type wordMask struct {
	w    int32
	bits uint64
}

// maskInfo is the precompiled conflict-scan structure of one mode for
// the v2 lock mechanism: the sparse word bitset of conflicting slots
// (only words with at least one conflicting slot appear) and the mode's
// own counter slot, whose threshold is 1 instead of 0 because the
// scanner has already incremented it (Fig 20's increment-then-scan).
type maskInfo struct {
	words    []wordMask
	selfSlot int32
	selfWord int32
	// refs is the flat slot list (shared with ModeTable.conflict) that
	// mechanisms with summaries off scan directly: for the few slots of a
	// small fine-grained mechanism the threshold-baked linear walk is
	// cheaper than iterating the bitset words.
	refs []conflictRef
	// bump marks modes whose successful acquisition must advance the
	// mechanism's version counter (the optimistic-read invalidation
	// signal): exactly the modes that conflict with something.
	// Acquiring a conflict-free mode cannot invalidate any lock-free
	// read, so it skips the shared-counter RMW.
	bump bool
}

// NewModeTable compiles the locking modes for an ADT class from its
// commutativity specification and the symbolic sets appearing at the
// class's lock sites (the output of the §4 refinement).
func NewModeTable(spec *Spec, sets []SymSet, opts TableOptions) *ModeTable {
	phi := opts.Phi
	if phi == nil {
		phi = NewPhi(DefaultAbstractValues)
	}
	maxModes := opts.MaxModes
	if maxModes == 0 {
		maxModes = 4096
	}

	uniq := dedupSets(sets)
	phi = coarsenPhi(phi, uniq, maxModes)

	t := &ModeTable{Spec: spec, phi: phi, setIdx: make(map[string]int)}

	// Instantiate modes per set, building the dynamic lookup tables.
	rawKeyToIdx := make(map[string]int)
	var raw []Mode
	for _, set := range uniq {
		vars := set.Vars()
		entry := setEntry{set: set, vars: vars}
		count := 1
		for range vars {
			count *= phi.N()
		}
		entry.modes = make([]ModeID, count)
		instantiated := InstantiateModes(set, phi)
		if len(instantiated) != count {
			panic("core: mode instantiation count mismatch")
		}
		for i, m := range instantiated {
			key := m.Key()
			idx, ok := rawKeyToIdx[key]
			if !ok {
				idx = len(raw)
				rawKeyToIdx[key] = idx
				raw = append(raw, m)
			}
			entry.modes[i] = ModeID(idx)
		}
		t.setIdx[set.Key()] = len(t.sets)
		t.sets = append(t.sets, entry)
	}
	t.modes = raw

	// F_c over all modes.
	t.fc = make([][]bool, len(raw))
	for i := range raw {
		t.fc[i] = make([]bool, len(raw))
		for j := range raw {
			if j < i {
				t.fc[i][j] = t.fc[j][i]
				continue
			}
			t.fc[i][j] = ModesCommute(spec, raw[i], raw[j], phi)
		}
	}

	// Merge indistinguishable modes (§5.3, opt. 1): l1 ~ l2 iff
	// ∀l: F_c(l1,l) == F_c(l2,l). Merged modes share one counter in the
	// lock mechanism; their ModeIDs stay distinct for coverage.
	t.canon = make([]int, len(raw))
	if opts.DisableMerging {
		for i := range t.canon {
			t.canon[i] = i
		}
		t.nCanon = len(raw)
	} else {
		sig := make(map[string]int)
		for i := range raw {
			key := rowKey(t.fc[i])
			if c, ok := sig[key]; ok {
				t.canon[i] = c
				continue
			}
			c := t.nCanon
			t.nCanon++
			sig[key] = c
			t.canon[i] = c
		}
	}

	t.partition(opts.DisablePartitioning)
	return t
}

// partition groups modes into independent mechanisms: connected
// components of the conflict graph (edge iff ¬F_c). Modes in different
// components commute pairwise, so separate mechanisms are correct
// (§5.2). Counter slots are allocated per canonical (merged) mode.
func (t *ModeTable) partition(disabled bool) {
	n := len(t.modes)
	t.part = make([]int, n)
	t.localIdx = make([]int, n)

	comp := make([]int, n)
	if disabled {
		for i := range comp {
			comp[i] = 0
		}
	} else {
		for i := range comp {
			comp[i] = -1
		}
		next := 0
		var stack []int
		for i := 0; i < n; i++ {
			if comp[i] != -1 {
				continue
			}
			comp[i] = next
			stack = append(stack[:0], i)
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for v := 0; v < n; v++ {
					// Merged modes must land in one component so they
					// can share a counter slot.
					if (!t.fc[u][v] || t.canon[u] == t.canon[v]) && comp[v] == -1 {
						comp[v] = next
						stack = append(stack, v)
					}
				}
			}
			next++
		}
	}

	// A component with no internal conflicts needs no mechanism: every
	// mode in it commutes with every mode anywhere, so acquisition is
	// free. Assign such modes part = -1.
	nComp := 0
	for _, c := range comp {
		if c+1 > nComp {
			nComp = c + 1
		}
	}
	hasConflict := make([]bool, nComp)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if comp[i] == comp[j] && !t.fc[i][j] {
				hasConflict[comp[i]] = true
			}
		}
	}
	remap := make([]int, nComp)
	nMech := 0
	for c := 0; c < nComp; c++ {
		if hasConflict[c] {
			remap[c] = nMech
			nMech++
		} else {
			remap[c] = -1
		}
	}
	t.partSizes = make([]int, nMech)
	canonSlot := make(map[int]int, t.nCanon) // canonical → slot in its mech
	for i := 0; i < n; i++ {
		p := remap[comp[i]]
		t.part[i] = p
		if p < 0 {
			continue
		}
		c := t.canon[i]
		slot, ok := canonSlot[c]
		if !ok {
			slot = t.partSizes[p]
			t.partSizes[p]++
			canonSlot[c] = slot
		}
		t.localIdx[i] = slot
	}

	// Conflict lists in local slot space, deduplicated per slot.
	t.conflict = make([][]conflictRef, n)
	for i := 0; i < n; i++ {
		if t.part[i] < 0 {
			continue
		}
		seen := make(map[int]bool)
		for j := 0; j < n; j++ {
			if t.part[j] != t.part[i] || t.fc[i][j] {
				continue
			}
			slot := t.localIdx[j]
			if seen[slot] {
				continue
			}
			seen[slot] = true
			ref := conflictRef{slot: slot, threshold: 0}
			if slot == t.localIdx[i] {
				ref.threshold = 1 // my own increment doesn't block me
			}
			t.conflict[i] = append(t.conflict[i], ref)
		}
	}

	// Word-bitset form of the same conflict lists for the v2 mechanism:
	// the O(conflicting modes) ref list becomes O(occupied words) of
	// summary checks on the common path.
	t.masks = make([]maskInfo, n)
	for i := 0; i < n; i++ {
		if t.part[i] < 0 {
			continue
		}
		self := int32(t.localIdx[i])
		mi := maskInfo{selfSlot: self, selfWord: self >> 6, refs: t.conflict[i], bump: len(t.conflict[i]) > 0}
		byWord := make(map[int32]uint64)
		for _, ref := range t.conflict[i] {
			byWord[int32(ref.slot)>>6] |= 1 << (uint(ref.slot) & 63)
		}
		for w, bits := range byWord {
			mi.words = append(mi.words, wordMask{w: w, bits: bits})
		}
		sort.Slice(mi.words, func(a, b int) bool { return mi.words[a].w < mi.words[b].w })
		t.masks[i] = mi
	}

	// Decide per mechanism whether summary counters pay for themselves:
	// only when some mode's conflict mask covers at least
	// summaryCutoffSlots slots does the summary shortcut save more scan
	// work than its maintenance costs on every claim.
	t.summaryOn = make([]bool, nMech)
	for i := 0; i < n; i++ {
		p := t.part[i]
		if p < 0 || t.summaryOn[p] {
			continue
		}
		total := 0
		for _, wm := range t.masks[i].words {
			total += bits.OnesCount64(wm.bits)
		}
		if total >= summaryCutoffSlots {
			t.summaryOn[p] = true
		}
	}
}

// summaryCutoffSlots is the conflict-mask width at which a mechanism
// switches from exact per-slot scans to summary-based scans. Below it,
// an exact scan touches so few counter lines that the two summary RMWs
// per acquire/release would dominate; above it, wildcard scans become
// O(words) instead of O(slots).
const summaryCutoffSlots = 16

// Phi returns the (possibly coarsened) abstract-value hash the table was
// compiled with.
func (t *ModeTable) Phi() Phi { return t.phi }

// Modes returns all instantiated locking modes, indexed by ModeID.
func (t *ModeTable) Modes() []Mode { return t.modes }

// RawModes returns the same slice as Modes (kept for reports that
// contrast instantiated modes with the merged counter count).
func (t *ModeTable) RawModes() []Mode { return t.modes }

// CanonicalCount returns the number of counters after merging
// indistinguishable modes (§5.3, opt. 1).
func (t *ModeTable) CanonicalCount() int { return t.nCanon }

// NumMechanisms returns how many independent lock mechanisms the
// partitioning produced.
func (t *ModeTable) NumMechanisms() int { return len(t.partSizes) }

// Commute returns F_c(a, b).
func (t *ModeTable) Commute(a, b ModeID) bool { return t.fc[a][b] }

// Mode returns the mode for an id.
func (t *ModeTable) Mode(id ModeID) Mode { return t.modes[id] }

// MechanismOf returns the index of the lock mechanism guarding mode id,
// or -1 when the mode conflicts with nothing (including itself) and
// needs no mechanism. Telemetry and plan reports use this to map static
// lock sites to the runtime counters of a specific mechanism.
func (t *ModeTable) MechanismOf(id ModeID) int { return t.part[id] }

// SlotOf returns mode id's counter slot within its mechanism (merged
// indistinguishable modes share a slot), or -1 when the mode needs no
// mechanism.
func (t *ModeTable) SlotOf(id ModeID) int {
	if t.part[id] < 0 {
		return -1
	}
	return t.localIdx[id]
}

// Table returns the ModeTable the set handle was created from.
func (r SetRef) Table() *ModeTable { return r.t }

// Index returns the set's index within its table — a stable identifier
// for reports that enumerate a table's sets.
func (r SetRef) Index() int { return r.idx }

// NumModes returns how many distinct mode selections the set can
// produce (the size of its dynamic lookup table; duplicates possible
// when φ collisions map different assignments to one mode).
func (r SetRef) NumModes() int { return len(r.t.sets[r.idx].modes) }

// ModeIDs returns a copy of the set's dynamic lookup table: the ModeID
// selected for each assignment of abstract values, in the enumeration
// order of InstantiateModes.
func (r SetRef) ModeIDs() []ModeID {
	return append([]ModeID(nil), r.t.sets[r.idx].modes...)
}

// SetRef is a handle to a registered symbolic set, used on the hot path
// to select the runtime locking mode from argument values without map
// lookups (§5.1's dynamic mode selection).
type SetRef struct {
	t   *ModeTable
	idx int
}

// Set returns a handle for the symbolic set, which must have been among
// the sets the table was compiled from.
func (t *ModeTable) Set(set SymSet) SetRef {
	idx, ok := t.setIdx[set.Key()]
	if !ok {
		panic(fmt.Sprintf("core: symbolic set %s not registered in mode table", set))
	}
	return SetRef{t: t, idx: idx}
}

// Vars returns the set's variables in the order Mode expects values.
func (r SetRef) Vars() []string { return r.t.sets[r.idx].vars }

// SymSet returns the underlying symbolic set.
func (r SetRef) SymSet() SymSet { return r.t.sets[r.idx].set }

// Mode selects the locking mode for the given runtime values of the
// set's variables (in Vars() order). For a constant symbolic set call it
// with no values.
func (r SetRef) Mode(vals ...Value) ModeID {
	e := &r.t.sets[r.idx]
	if len(vals) != len(e.vars) {
		panic(fmt.Sprintf("core: set %s expects %d values, got %d", e.set, len(e.vars), len(vals)))
	}
	// vars[0] is the most significant digit, matching the enumeration
	// order of InstantiateModes.
	idx := 0
	n := r.t.phi.N()
	for i := 0; i < len(vals); i++ {
		idx = idx*n + r.t.phi.Abstract(vals[i])
	}
	return e.modes[idx]
}

// Binder returns a mode selector that accepts values in the caller's
// own argument order (names) instead of the set's canonical sorted-Vars
// order. It panics unless names is a permutation of Vars(). Use it once
// at setup to make multi-variable lock sites immune to argument-order
// mistakes:
//
//	mode := table.Set(set).Binder("s", "d")   // caller's order
//	...
//	id := mode(s, d)
func (r SetRef) Binder(names ...string) func(vals ...Value) ModeID {
	vars := r.Vars()
	if len(vars) == 0 {
		// Constant set (e.g. under the no-refinement ablation): one
		// mode regardless of the caller's values.
		return func(_ ...Value) ModeID { return r.Mode() }
	}
	if len(names) != len(vars) {
		panic(fmt.Sprintf("core: Binder(%v): set %s has variables %v", names, r.SymSet(), vars))
	}
	perm := make([]int, len(vars)) // perm[i] = caller index supplying vars[i]
	for i, v := range vars {
		found := -1
		for j, n := range names {
			if n == v {
				found = j
				break
			}
		}
		if found == -1 {
			panic(fmt.Sprintf("core: Binder(%v): set %s has variables %v", names, r.SymSet(), vars))
		}
		perm[i] = found
	}
	identity := true
	for i, j := range perm {
		if i != j {
			identity = false
			break
		}
	}
	if identity {
		// The caller's order is already the canonical Vars() order; no
		// reordering buffer at all.
		return func(vals ...Value) ModeID {
			if len(vals) != len(perm) {
				panic(fmt.Sprintf("core: bound mode selector expects %d values, got %d", len(perm), len(vals)))
			}
			return r.Mode(vals...)
		}
	}
	return func(vals ...Value) ModeID {
		if len(vals) != len(perm) {
			panic(fmt.Sprintf("core: bound mode selector expects %d values, got %d", len(perm), len(vals)))
		}
		// Selector runs on the per-operation mode-selection path: keep
		// the reorder buffer on the stack for the common arities.
		var buf [4]Value
		ordered := buf[:0]
		if len(perm) > len(buf) {
			ordered = make([]Value, 0, len(perm))
		}
		for _, j := range perm {
			ordered = append(ordered, vals[j])
		}
		return r.Mode(ordered...)
	}
}

// Binder1 is the fixed-arity form of Binder for one-variable sets: the
// returned selector takes its single value directly, so a call through
// it builds no variadic []Value slice at all — the variadic Binder
// closure costs one heap-allocated argument slice per call at every
// indirect call site. Constant sets (e.g. under the no-refinement
// ablation) are accepted and select their single mode regardless of the
// value.
func (r SetRef) Binder1(name string) func(Value) ModeID {
	vars := r.Vars()
	if len(vars) == 0 {
		id := r.Mode()
		return func(Value) ModeID { return id }
	}
	if len(vars) != 1 || vars[0] != name {
		panic(fmt.Sprintf("core: Binder1(%q): set %s has variables %v", name, r.SymSet(), vars))
	}
	e := &r.t.sets[r.idx]
	phi := r.t.phi
	return func(v Value) ModeID { return e.modes[phi.Abstract(v)] }
}

// Binder2 is the fixed-arity form of Binder for two-variable sets; names
// give the caller's argument order, which may be either permutation of
// Vars(). As with Binder1, calls through the returned selector are
// allocation-free.
func (r SetRef) Binder2(n1, n2 string) func(Value, Value) ModeID {
	vars := r.Vars()
	if len(vars) == 0 {
		id := r.Mode()
		return func(Value, Value) ModeID { return id }
	}
	var swap bool
	switch {
	case len(vars) == 2 && n1 == vars[0] && n2 == vars[1]:
	case len(vars) == 2 && n1 == vars[1] && n2 == vars[0]:
		swap = true
	default:
		panic(fmt.Sprintf("core: Binder2(%q,%q): set %s has variables %v", n1, n2, r.SymSet(), vars))
	}
	e := &r.t.sets[r.idx]
	phi := r.t.phi
	n := phi.N()
	return func(a, b Value) ModeID {
		if swap {
			a, b = b, a
		}
		return e.modes[phi.Abstract(a)*n+phi.Abstract(b)]
	}
}

// ModeEnv selects the locking mode using an environment σ mapping
// variable names to runtime values — the reference (slower) path.
func (r SetRef) ModeEnv(env map[string]Value) ModeID {
	e := &r.t.sets[r.idx]
	vals := make([]Value, len(e.vars))
	for i, v := range e.vars {
		val, ok := env[v]
		if !ok {
			panic(fmt.Sprintf("core: no runtime value for variable %q", v))
		}
		vals[i] = val
	}
	return r.Mode(vals...)
}

// CoversOp reports whether the canonical mode id's denotation contains
// the runtime operation op — the basis of the protocol checker.
func (t *ModeTable) CoversOp(id ModeID, op Op) bool {
	return t.modes[id].Covers(op, t.phi)
}

func rowKey(row []bool) string {
	b := make([]byte, len(row))
	for i, v := range row {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

func dedupSets(sets []SymSet) []SymSet {
	seen := make(map[string]bool, len(sets))
	var out []SymSet
	for _, s := range sets {
		if k := s.Key(); !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// coarsenPhi halves the number of abstract values until the total raw
// mode count over all sets fits within maxModes (§5.3, opt. 3 — "if we
// infer more than N modes, we merge them until we have N modes").
func coarsenPhi(phi Phi, sets []SymSet, maxModes int) Phi {
	n := phi.N()
	for n > 1 {
		total := 0
		for _, s := range sets {
			c := 1
			for range s.Vars() {
				c *= n
				if c > maxModes {
					break
				}
			}
			total += c
			if total > maxModes {
				break
			}
		}
		if total <= maxModes {
			break
		}
		n /= 2
	}
	if n == phi.N() {
		return phi
	}
	return &reducedPhi{base: phi, n: n}
}

// reducedPhi coarsens a base φ to fewer buckets by taking the bucket
// modulo n. All modes of one table share one φ, so disjointness
// reasoning stays sound.
type reducedPhi struct {
	base Phi
	n    int
}

func (p *reducedPhi) N() int { return p.n }

func (p *reducedPhi) Abstract(v Value) int { return p.base.Abstract(v) % p.n }
