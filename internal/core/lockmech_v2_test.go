package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"

	"repro/internal/padded"
)

// Tests specific to lock mechanism v2: the padded-counter layout, the
// summary-based conflict scan, the targeted-wakeup waiter registry, and
// the adaptive fast-path bound — plus parity runs of the exclusion
// tests against the v1 mechanism (ablation A5).

// TestMechV2CounterLayout asserts the property padding exists for: each
// mode counter occupies its own cache line.
func TestMechV2CounterLayout(t *testing.T) {
	tbl := mapTable(t, 8, TableOptions{})
	s := NewSemantic(tbl)
	for mi := range s.mechs {
		counts := s.mechs[mi].counts
		for i := 1; i < len(counts); i++ {
			d := uintptr(unsafe.Pointer(&counts[i])) - uintptr(unsafe.Pointer(&counts[i-1]))
			if d != padded.CacheLineSize {
				t.Fatalf("mech %d: counters %d bytes apart, want %d", mi, d, padded.CacheLineSize)
			}
		}
	}
}

// TestMechV2SummaryInvariant: after any quiescent acquire/release
// pattern, each word summary equals the number of held claims in the
// word (the over-approximation is exact at rest).
func TestMechV2SummaryInvariant(t *testing.T) {
	// φ=64 puts the size wildcard's mask above summaryCutoffSlots, so the
	// merged mechanism maintains summaries.
	tbl := mapTable(t, 64, TableOptions{})
	s := NewSemantic(tbl)
	for mi := range s.mechs {
		if !s.mechs[mi].maintainSummary {
			t.Fatal("test premise: wildcard mechanism must maintain summaries")
		}
	}
	modes := []ModeID{keyMode(tbl, 0), keyMode(tbl, 1), keyMode(tbl, 2), sizeMode(tbl)}
	check := func(want int32) {
		t.Helper()
		var total int32
		for mi := range s.mechs {
			for w := range s.mechs[mi].summary {
				total += s.mechs[mi].summary[w].Load()
			}
		}
		if total != want {
			t.Fatalf("summary total = %d, want %d", total, want)
		}
	}
	check(0)
	s.Acquire(modes[0])
	check(1)
	s.Acquire(modes[1])
	check(2)
	s.Release(modes[0])
	check(1)
	s.Release(modes[1])
	check(0)
	// A failed TryAcquire must leave no residue.
	s.Acquire(modes[0])
	if s.TryAcquire(modes[3]) { // size conflicts with held put mode
		t.Fatal("conflicting TryAcquire succeeded")
	}
	check(1)
	s.Release(modes[0])
	check(0)
}

// TestMechV2SummaryOff: a narrow-mask mechanism (no wildcard wide enough
// to amortize maintenance) statically disables summaries; claims touch
// only their own counter, scans are exact, and exclusion still holds.
func TestMechV2SummaryOff(t *testing.T) {
	tbl := mapTable(t, 4, TableOptions{}) // size mask = 4 slots < cutoff
	s := NewSemantic(tbl)
	for mi := range s.mechs {
		if s.mechs[mi].maintainSummary {
			t.Fatal("narrow-mask mechanism should not maintain summaries")
		}
	}
	k, sz := keyMode(tbl, 1), sizeMode(tbl)
	s.Acquire(k)
	for mi := range s.mechs {
		for w := range s.mechs[mi].summary {
			if got := s.mechs[mi].summary[w].Load(); got != 0 {
				t.Fatalf("summary[%d] = %d with summaries off", w, got)
			}
		}
	}
	if s.TryAcquire(sz) {
		t.Fatal("size acquired while conflicting put mode held")
	}
	if !s.TryAcquire(keyMode(tbl, 2)) {
		t.Fatal("commuting mode refused")
	}
	s.Release(keyMode(tbl, 2))
	s.Release(k)
	if !s.TryAcquire(sz) {
		t.Fatal("size refused on an idle instance")
	}
	s.Release(sz)
}

// TestTargetedWakeup is the regression test for the per-slot wait-list
// path: holders pin N disjoint buckets, one waiter blocks per bucket,
// and releasing one bucket must wake only that bucket's waiter. The v1
// broadcast would bounce every waiter through an extra failed scan,
// which is observable as extra LockStats.Waits.
func TestTargetedWakeup(t *testing.T) {
	const n = 8
	assign := make(map[Value]int, n)
	for b := 0; b < n; b++ {
		assign[b] = b
	}
	tbl := mapTable(t, n, TableOptions{Phi: NewFixedPhi(n, 0, assign)})
	s := NewSemantic(tbl)

	modes := make([]ModeID, n)
	for b := 0; b < n; b++ {
		modes[b] = keyMode(tbl, b)
		if tbl.Commute(modes[b], modes[b]) {
			t.Fatal("test premise: per-bucket put mode must self-conflict")
		}
		for a := 0; a < b; a++ {
			if !tbl.Commute(modes[a], modes[b]) {
				t.Fatal("test premise: distinct-bucket modes must commute")
			}
		}
	}

	// Pin every bucket.
	for b := 0; b < n; b++ {
		s.Acquire(modes[b])
	}
	// One waiter per bucket; all must block.
	done := make([]chan struct{}, n)
	for b := 0; b < n; b++ {
		done[b] = make(chan struct{})
		go func(b int) {
			s.Acquire(modes[b])
			close(done[b])
		}(b)
	}
	// Wait until every waiter has actually slept at least once.
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Waits < n {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never blocked: stats %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	waitsBefore := s.Stats().Waits

	// Release bucket 0: only waiter 0 may proceed.
	s.Release(modes[0])
	select {
	case <-done[0]:
	case <-time.After(5 * time.Second):
		t.Fatal("eligible waiter not woken")
	}
	for b := 1; b < n; b++ {
		select {
		case <-done[b]:
			t.Fatalf("waiter %d woke without its bucket being released", b)
		default:
		}
	}
	// Targeted wakeups: the n-1 ineligible waiters must not have been
	// bounced through extra failed scans. (The woken waiter acquires on
	// its first re-scan, adding no Waits.)
	if extra := s.Stats().Waits - waitsBefore; extra != 0 {
		t.Errorf("release caused %d extra waits; broadcast wakeup leaked in", extra)
	}

	// Release the rest; every waiter must eventually get through.
	for b := 1; b < n; b++ {
		s.Release(modes[b])
	}
	for b := 1; b < n; b++ {
		select {
		case <-done[b]:
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d lost its wakeup", b)
		}
	}
	for b := 0; b < n; b++ {
		s.Release(modes[b]) // waiters' own holds
	}
}

// TestNoLostWakeupChurn hammers conflicting modes from many goroutines
// under -race: every acquirer must eventually get through (a lost
// wakeup deadlocks the run and trips the test timeout).
func TestNoLostWakeupChurn(t *testing.T) {
	tbl := mapTable(t, 4, TableOptions{})
	s := NewSemantic(tbl)
	sm := sizeMode(tbl)
	const goroutines = 16
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if (g+i)%7 == 0 {
					s.Acquire(sm)
					s.Release(sm)
				} else {
					m := keyMode(tbl, (g*13+i)%64)
					s.Acquire(m)
					s.Release(m)
				}
			}
		}(g)
	}
	donech := make(chan struct{})
	go func() { wg.Wait(); close(donech) }()
	select {
	case <-donech:
	case <-time.After(2 * time.Minute):
		t.Fatal("churn did not complete: lost wakeup or deadlock")
	}
}

// TestAdaptiveSpinBounds: the fast-path retry bound must stay within
// [minSpin, maxSpin] under both friendly and hostile workloads.
func TestAdaptiveSpinBounds(t *testing.T) {
	tbl := mapTable(t, 1, TableOptions{})
	s := NewSemantic(tbl)
	km, sm := keyMode(tbl, 7), sizeMode(tbl)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := km
			if g%2 == 0 {
				m = sm
			}
			for i := 0; i < 2000; i++ {
				s.Acquire(m)
				s.Release(m)
			}
		}(g)
	}
	wg.Wait()
	for i := range s.mechs {
		if b := s.mechs[i].spin.Load(); b < minSpin || b > maxSpin {
			t.Errorf("mech %d spin bound %d outside [%d,%d]", i, b, minSpin, maxSpin)
		}
	}
}

// TestMechV1MutualExclusion re-runs the conflicting-mode exclusion test
// against the v1 mechanism (ablation A5), which must stay correct.
func TestMechV1MutualExclusion(t *testing.T) {
	tbl := mapTable(t, 1, TableOptions{})
	s := NewSemantic(tbl)
	s.DisableMechV2 = true
	km, sm := keyMode(tbl, 7), sizeMode(tbl)
	var inside, violations atomic.Int32
	var wg sync.WaitGroup
	for _, m := range []ModeID{km, sm} {
		wg.Add(1)
		go func(m ModeID) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				s.Acquire(m)
				if inside.Add(1) != 1 {
					violations.Add(1)
				}
				inside.Add(-1)
				s.Release(m)
			}
		}(m)
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Errorf("%d mutual-exclusion violations under DisableMechV2", v)
	}
	if st := s.Stats(); st.FastPath+st.Slow == 0 {
		t.Error("v1 mechanism recorded no acquisitions")
	}
}

// TestMechV1Wakeup: blocking and wakeup through the v1 broadcast path.
func TestMechV1Wakeup(t *testing.T) {
	tbl := mapTable(t, 1, TableOptions{})
	s := NewSemantic(tbl)
	s.DisableMechV2 = true
	km, sm := keyMode(tbl, 7), sizeMode(tbl)
	s.Acquire(km)
	acquired := make(chan struct{})
	go func() {
		s.Acquire(sm)
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("conflicting acquire did not block")
	case <-time.After(50 * time.Millisecond):
	}
	s.Release(km)
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("v1 waiter never woke")
	}
	s.Release(sm)
}

// TestDisableFastPathV2: ablation A4 on top of v2 still excludes.
func TestDisableFastPathV2(t *testing.T) {
	tbl := mapTable(t, 1, TableOptions{})
	s := NewSemantic(tbl)
	s.DisableFastPath = true
	km, sm := keyMode(tbl, 7), sizeMode(tbl)
	var inside, violations atomic.Int32
	var wg sync.WaitGroup
	for _, m := range []ModeID{km, sm} {
		wg.Add(1)
		go func(m ModeID) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Acquire(m)
				if inside.Add(1) != 1 {
					violations.Add(1)
				}
				inside.Add(-1)
				s.Release(m)
			}
		}(m)
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Errorf("%d violations with fast path disabled on v2", violations.Load())
	}
	if st := s.Stats(); st.FastPath != 0 {
		t.Errorf("fast path used %d times despite DisableFastPath", st.FastPath)
	}
}

// TestBinderNoAlloc: the bound mode selector must not allocate for ≤4
// variables (it sits on the per-operation mode-selection path). Both the
// identity permutation and the reordering permutation are covered.
func TestBinderNoAlloc(t *testing.T) {
	set := SymSetOf(SymOpOf("put", VarArg("a"), VarArg("b")))
	oneVar := SymSetOf(SymOpOf("get", VarArg("k")))
	tbl := NewModeTable(mapSpec(), []SymSet{set, oneVar}, TableOptions{Phi: NewPhi(8)})
	ref := tbl.Set(set)
	vars := ref.Vars()

	// Fixed-arity selectors: fully allocation-free (boxed small ints are
	// interned by the runtime, and there is no argument slice at all).
	b2 := ref.Binder2(vars[0], vars[1])
	b2r := ref.Binder2(vars[1], vars[0])
	b1 := tbl.Set(oneVar).Binder1("k")
	if n := testing.AllocsPerRun(100, func() { b2(3, 5) }); n != 0 {
		t.Errorf("Binder2 allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { b2r(5, 3) }); n != 0 {
		t.Errorf("reordering Binder2 allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { b1(7) }); n != 0 {
		t.Errorf("Binder1 allocates %.1f per call, want 0", n)
	}
	if b2(3, 5) != b2r(5, 3) {
		t.Error("reordering Binder2 selected a different mode")
	}
	if b2(3, 5) != ref.Mode(3, 5) {
		t.Error("Binder2 disagrees with Mode")
	}
	if b1(7) != tbl.Set(oneVar).Mode(7) {
		t.Error("Binder1 disagrees with Mode")
	}

	// The variadic Binder no longer allocates its reorder buffer; the one
	// remaining allocation is the caller's variadic argument slice, which
	// escapes because the call is indirect.
	identity := ref.Binder(vars...)
	reversed := ref.Binder(vars[1], vars[0])
	if n := testing.AllocsPerRun(100, func() { identity(3, 5) }); n > 1 {
		t.Errorf("identity Binder allocates %.1f per call, want ≤ 1 (arg slice only)", n)
	}
	if n := testing.AllocsPerRun(100, func() { reversed(5, 3) }); n > 1 {
		t.Errorf("reordering Binder allocates %.1f per call, want ≤ 1 (arg slice only)", n)
	}
	if identity(3, 5) != reversed(5, 3) {
		t.Error("reordering Binder selected a different mode than identity")
	}
}
