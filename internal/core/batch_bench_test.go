package core

import "testing"

// Benchmarks for the fused-prologue acquisition fast path: a three-mode
// same-instance batch against the three sequential acquisitions it
// replaces. Run with `go test -bench AcquireBatch -benchmem ./internal/core`.

func batchBenchFixture() (*Semantic, ModeID, ModeID, ModeID) {
	keySet := SymSetOf(
		SymOpOf("get", VarArg("k")),
		SymOpOf("put", VarArg("k"), Star()),
		SymOpOf("remove", VarArg("k")),
	)
	tbl := NewModeTable(mapSpec(), []SymSet{keySet}, TableOptions{Phi: NewPhi(64)})
	ref := tbl.Set(keySet)
	return NewSemantic(tbl), ref.Mode(0), ref.Mode(1), ref.Mode(2)
}

func BenchmarkAcquireSequential3(b *testing.B) {
	s, m1, m2, m3 := batchBenchFixture()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Acquire(m1)
		s.Acquire(m2)
		s.Acquire(m3)
		s.Release(m1)
		s.Release(m2)
		s.Release(m3)
	}
}

func BenchmarkAcquireBatch3(b *testing.B) {
	s, m1, m2, m3 := batchBenchFixture()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.AcquireBatch(m1, m2, m3)
		s.Release(m1)
		s.Release(m2)
		s.Release(m3)
	}
}
