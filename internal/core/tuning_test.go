package core

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestSpinBoundsClampAndApply(t *testing.T) {
	tbl := mapTable(t, 8, TableOptions{})
	s := NewSemantic(tbl)
	if got := s.SpinBoundsNow(); got != DefaultSpinBounds() {
		t.Fatalf("initial bounds = %+v, want defaults %+v", got, DefaultSpinBounds())
	}
	s.SetSpinBounds(SpinBounds{Min: 0, Max: 1000})
	if got := s.SpinBoundsNow(); got != (SpinBounds{Min: 1, Max: spinBoundCap}) {
		t.Fatalf("clamped bounds = %+v", got)
	}
	s.SetSpinBounds(SpinBounds{Min: 10, Max: 3})
	if got := s.SpinBoundsNow(); got != (SpinBounds{Min: 10, Max: 10}) {
		t.Fatalf("inverted bounds = %+v, want Max raised to Min", got)
	}
}

func TestOptGatePackUnpackAndClamp(t *testing.T) {
	for _, p := range []OptGateParams{
		DefaultOptGateParams(),
		{Window: 2, DisableNum: 1, DisableDen: 255, ProbeInterval: 2},
		{Window: 1 << 15, DisableNum: 255, DisableDen: 255, ProbeInterval: 1 << 30},
	} {
		if got := unpackOptGate(packOptGate(p)); got != p {
			t.Fatalf("pack/unpack not identity: %+v -> %+v", p, got)
		}
	}
	c := OptGateParams{Window: 0, DisableNum: 9, DisableDen: 4, ProbeInterval: 0}.clamp()
	if c.Window != 2 || c.DisableNum != 4 || c.DisableDen != 4 || c.ProbeInterval != c.Window {
		t.Fatalf("clamp = %+v", c)
	}
	if c := (OptGateParams{Window: 64, DisableNum: 1, DisableDen: 0, ProbeInterval: 10}).clamp(); c.DisableDen != optDisableDen || c.ProbeInterval != 64 {
		t.Fatalf("zero-den clamp = %+v", c)
	}
}

// TestOptGateBoundary pins the disable threshold of the adaptive gate:
// with the default 1/4-per-64 parameters, exactly 16 failures in a
// 64-attempt window close the optimistic path; 15 do not. The comment
// in lockmech.go promises "close at >= num/den failures" — this is the
// test that keeps the comparison honest at the boundary.
func TestOptGateBoundary(t *testing.T) {
	tbl := mapTable(t, 8, TableOptions{})
	feed := func(s *Semantic, fails, total int) {
		for i := 0; i < total; i++ {
			s.recordValidation(i >= fails)
		}
	}

	s := NewSemantic(tbl)
	feed(s, 15, 64) // one below threshold
	if !s.OptimisticEnabled() {
		t.Fatal("gate closed at 15/64 failures, threshold is 16")
	}

	s = NewSemantic(tbl)
	feed(s, 16, 64) // exactly the threshold
	if s.OptimisticEnabled() {
		t.Fatal("gate open at 16/64 failures, threshold is 16")
	}

	// Retuned small window: 1-of-4 closes, 0-of-4 keeps open; the probe
	// interval (clamped up to the window) re-admits exactly one attempt
	// which re-opens the gate from its enabled state.
	s = NewSemantic(tbl)
	s.SetOptGateParams(OptGateParams{Window: 4, DisableNum: 1, DisableDen: 4, ProbeInterval: 4})
	feed(s, 0, 4)
	if !s.OptimisticEnabled() {
		t.Fatal("gate closed on an all-success window")
	}
	feed(s, 1, 4)
	if s.OptimisticEnabled() {
		t.Fatal("gate open at 1/4 failures with 1/4 threshold")
	}
	admitted := 0
	for i := 0; i < 4; i++ {
		if s.optimisticAllowed() {
			admitted++
		}
	}
	if admitted != 1 {
		t.Fatalf("closed gate admitted %d of 4 attempts, want exactly the probe", admitted)
	}
	if !s.OptimisticEnabled() {
		t.Fatal("gate still closed after the probe was admitted")
	}
}

// TestOptGateSingleCloser: hammer one window boundary from many
// goroutines. The CAS-elected closer must consume each window exactly
// once — under the old Store-based close, racing closers could evaluate
// one window twice and a failure burst could close the gate twice per
// window, visible here as the gate closing with a failure share below
// threshold.
func TestOptGateSingleCloser(t *testing.T) {
	tbl := mapTable(t, 8, TableOptions{})
	s := NewSemantic(tbl)
	// 1/4 threshold over tiny windows maximizes boundary crossings.
	s.SetOptGateParams(OptGateParams{Window: 4, DisableNum: 1, DisableDen: 4, ProbeInterval: 4})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				s.recordValidation(true) // all successes: no window may ever close
			}
		}()
	}
	wg.Wait()
	if !s.OptimisticEnabled() {
		t.Fatal("all-success windows closed the gate")
	}
	st := s.Stats()
	if st.OptimisticHits != workers*20000 {
		t.Fatalf("hits = %d, want %d", st.OptimisticHits, workers*20000)
	}
}

// TestWaitTimingMidFlightToggle pins the satellite-3 semantics: a
// waiter parked BEFORE SetWaitTiming(true) settles with a ">=" lower
// bound measured from the enable instant instead of reporting zero —
// the same convention the watchdog uses for pre-Watch waiters — so a
// controller enabling wait timing mid-run reads conservative nonzero
// samples, not garbage.
func TestWaitTimingMidFlightToggle(t *testing.T) {
	SetWaitTiming(false)
	defer SetWaitTiming(false)
	tbl := mapTable(t, 1, TableOptions{}) // n=1: key modes conflict with size
	s := NewSemantic(tbl)
	km, sm := keyMode(tbl, 7), sizeMode(tbl)

	s.Acquire(km)
	done := make(chan struct{})
	go func() {
		s.Acquire(sm) // parks: conflicts with the held key mode
		s.Release(sm)
		close(done)
	}()
	// Wait until the waiter is parked (Waits counts the park).
	for deadline := time.Now().Add(2 * time.Second); s.Stats().Waits == 0; {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		runtime.Gosched()
	}

	// Enable wait timing with the waiter already parked, then hold the
	// lock long enough that the lower bound is unmistakably nonzero.
	SetWaitTiming(true)
	const hold = 40 * time.Millisecond
	time.Sleep(hold)
	s.Release(km)
	<-done

	got := time.Duration(s.Stats().WaitNanos)
	if got < hold/2 {
		t.Fatalf("WaitNanos = %v after mid-flight enable, want >= ~%v (lower bound from enable instant)", got, hold)
	}

	// Control: with timing off again, a fresh pre-parked waiter settles
	// with no credit at all — the bound only applies while a gate is
	// open at settle time.
	SetWaitTiming(false)
	base := s.Stats().WaitNanos
	s.Acquire(km)
	done2 := make(chan struct{})
	go func() {
		s.Acquire(sm)
		s.Release(sm)
		close(done2)
	}()
	for deadline := time.Now().Add(2 * time.Second); s.Stats().Waits < 2; {
		if time.Now().After(deadline) {
			t.Fatal("second waiter never parked")
		}
		runtime.Gosched()
	}
	time.Sleep(10 * time.Millisecond)
	s.Release(km)
	<-done2
	if after := s.Stats().WaitNanos; after != base {
		t.Fatalf("WaitNanos moved %d -> %d with timing off", base, after)
	}
}

func TestModeMemoLimit(t *testing.T) {
	defer SetModeMemoLimit(modeMemoSize)
	SetModeMemoLimit(0)
	if got := ModeMemoLimit(); got != 1 {
		t.Fatalf("limit after SetModeMemoLimit(0) = %d, want clamp to 1", got)
	}
	SetModeMemoLimit(100)
	if got := ModeMemoLimit(); got != modeMemoSize {
		t.Fatalf("limit after SetModeMemoLimit(100) = %d, want clamp to %d", got, modeMemoSize)
	}

	// Correctness across shrink/grow: the memo must return the same
	// ModeID the direct selector computes, at every limit.
	tbl := mapTable(t, 8, TableOptions{})
	ref := tbl.Set(SymSetOf(
		SymOpOf("get", VarArg("k")), SymOpOf("put", VarArg("k"), Star()), SymOpOf("remove", VarArg("k"))))
	txn := &Txn{}
	for _, lim := range []int{8, 3, 1, 5, 8} {
		SetModeMemoLimit(lim)
		for k := 0; k < 16; k++ {
			want := ref.Mode1(Value(k))
			if got := txn.CachedMode1(ref, Value(k)); got != want {
				t.Fatalf("limit %d: CachedMode1(%d) = %v, want %v", lim, k, got, want)
			}
		}
	}
}

// TestTuningRaceHammer is the satellite-4 stress: a background tuner
// cycles every runtime knob while workers run single, batched, and
// optimistic-accounting traffic. Run under -race it proves the knob
// plumbing introduces no torn reads; the post-join assertions prove no
// waiter leaked, the instance quiesced, and the stats stayed sane.
func TestTuningRaceHammer(t *testing.T) {
	defer func() {
		SetModeMemoLimit(modeMemoSize)
		SetWaitTiming(false)
	}()
	tbl := mapTable(t, 64, TableOptions{}) // wide φ: summaries maintained
	s := NewSemantic(tbl)
	ref := tbl.Set(SymSetOf(
		SymOpOf("get", VarArg("k")), SymOpOf("put", VarArg("k"), Star()), SymOpOf("remove", VarArg("k"))))

	iters := 4000
	if testing.Short() {
		iters = 500
	}

	stop := make(chan struct{})
	var tunerWG sync.WaitGroup
	tunerWG.Add(1)
	go func() {
		defer tunerWG.Done()
		spins := []SpinBounds{{1, 2}, {1, 16}, DefaultSpinBounds(), {4, 64}}
		gates := []OptGateParams{
			{Window: 4, DisableNum: 1, DisableDen: 4, ProbeInterval: 8},
			DefaultOptGateParams(),
			{Window: 128, DisableNum: 1, DisableDen: 2, ProbeInterval: 1024},
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.SetSpinBounds(spins[i%len(spins)])
			s.SetOptGateParams(gates[i%len(gates)])
			s.SetSummaryScan(i%2 == 0)
			SetModeMemoLimit(1 + i%modeMemoSize)
			SetWaitTiming(i%4 < 2)
			runtime.Gosched()
		}
	}()

	// Monitor: lifetime counters must be monotone under concurrent
	// retuning — a torn or double-harvested counter shows up as a dip.
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		var prev LockStats
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := s.Stats()
			if st.FastPath < prev.FastPath || st.Slow < prev.Slow ||
				st.Waits < prev.Waits || st.Batches < prev.Batches ||
				st.OptimisticHits < prev.OptimisticHits ||
				st.OptimisticRetries < prev.OptimisticRetries ||
				st.WaitNanos < prev.WaitNanos {
				t.Errorf("LockStats went backwards: %+v -> %+v", prev, st)
				return
			}
			prev = st
			time.Sleep(100 * time.Microsecond)
		}
	}()

	workers := 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			txn := &Txn{}
			sm := sizeMode(tbl)
			for i := 0; i < iters; i++ {
				k := Value((w*31 + i) % 64)
				m := txn.CachedMode1(ref, k)
				switch i % 4 {
				case 0:
					s.Acquire(m)
					s.Release(m)
				case 1:
					s.AcquireBatch(m, sm)
					s.Release(m)
					s.Release(sm)
				case 2:
					s.Acquire(sm) // wildcard: conflicts with every key mode
					s.Release(sm)
				default:
					if s.optimisticAllowed() {
						s.recordValidation(i%8 != 0)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	tunerWG.Wait()
	monWG.Wait()

	if err := s.CheckQuiesced(); err != nil {
		t.Fatalf("instance not quiescent after hammer: %v", err)
	}
	if n := WaitersOutstanding(); n != 0 {
		t.Fatalf("WaitersOutstanding = %d after hammer, want 0", n)
	}
	st := s.Stats()
	if st.FastPath+st.Slow+st.Batches == 0 {
		t.Fatal("hammer recorded no acquisitions at all")
	}
}
