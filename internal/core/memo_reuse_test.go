package core

import "testing"

// TestMemoSurvivesResetAcrossTables is the pooled-transaction staleness
// audit of the CachedMode1/CachedMode2 memo: entries deliberately
// survive Reset, so a pooled Txn that served sections of one ModeTable
// and is then reused against a different one must never serve a ModeID
// interned for the old table. The memo key includes the *ModeTable
// pointer and the set index, so a different table — even one compiled
// from the same spec and sets — can never hit an old entry: ModeIDs are
// only meaningful relative to their own table, and the pointer match
// makes cross-table confusion structurally impossible (the memo also
// keeps the old table reachable, so its address cannot be recycled
// while an entry still names it).
func TestMemoSurvivesResetAcrossTables(t *testing.T) {
	keySet := SymSetOf(SymOpOf("get", VarArg("k")), SymOpOf("put", VarArg("k"), Star()), SymOpOf("remove", VarArg("k")))
	sizeSet := SymSetOf(SymOpOf("size"))
	// Different φ widths: the same runtime value selects numerically
	// different ModeIDs in the two tables, so serving a stale entry
	// would be observable, not coincidentally correct.
	tblA := NewModeTable(mapSpec(), []SymSet{keySet, sizeSet}, TableOptions{Phi: NewPhi(8)})
	tblB := NewModeTable(mapSpec(), []SymSet{keySet, sizeSet}, TableOptions{Phi: NewPhi(2)})
	refA, refB := tblA.Set(keySet), tblB.Set(keySet)

	// Find a value whose selections differ across the tables (with
	// φ widths 8 vs 2 most values qualify; don't bake in which).
	probe := -1
	for v := 0; v < 16; v++ {
		if refA.Mode1(v) != refB.Mode1(v) {
			probe = v
			break
		}
	}
	if probe == -1 {
		t.Fatal("test premise: no value distinguishes the two tables")
	}

	tx := NewTxn()
	// Warm the memo thoroughly against table A, filling every slot.
	for v := 0; v < 2*modeMemoSize; v++ {
		tx.CachedMode1(refA, v)
	}
	tx.Reset() // pooled reuse: memo survives by design

	if got, want := tx.CachedMode1(refB, probe), refB.Mode1(probe); got != want {
		t.Fatalf("pooled Txn served stale ModeID %d for table B value %d, want %d (table A interned %d)",
			got, probe, want, refA.Mode1(probe))
	}
	// And the reverse direction, now that B's entries are interned.
	if got, want := tx.CachedMode1(refA, probe), refA.Mode1(probe); got != want {
		t.Fatalf("memo returned %d for table A after serving table B, want %d", got, want)
	}
}

// TestMemoDistinguishesSetsAndValueTypes: within one table the memo key
// includes the set index, and value matching is Go interface equality —
// int(3) and int32(3) are different keys, so a memo hit can never
// conflate values that φ might abstract differently.
func TestMemoDistinguishesSetsAndValueTypes(t *testing.T) {
	keySet := SymSetOf(SymOpOf("get", VarArg("k")), SymOpOf("put", VarArg("k"), Star()), SymOpOf("remove", VarArg("k")))
	sizeSet := SymSetOf(SymOpOf("size"))
	tbl := NewModeTable(mapSpec(), []SymSet{keySet, sizeSet}, TableOptions{Phi: NewPhi(8)})
	keys, size := tbl.Set(keySet), tbl.Set(sizeSet)

	tx := NewTxn()
	for trial := 0; trial < 3; trial++ {
		if got, want := tx.CachedMode1(keys, 3), keys.Mode1(3); got != want {
			t.Fatalf("key set: got %d, want %d", got, want)
		}
		// Same value, different set of the same table: must not hit the
		// key-set entry (size is a constant set; any value selects its
		// single mode).
		if got, want := tx.CachedMode1(size, 3), size.Mode1(3); got != want {
			t.Fatalf("size set: got %d, want %d", got, want)
		}
		// Same numeric value under a different dynamic type is a
		// distinct memo key and must re-select through φ.
		if got, want := tx.CachedMode1(keys, int32(3)), keys.Mode1(int32(3)); got != want {
			t.Fatalf("int32 key: got %d, want %d", got, want)
		}
	}
}
