package core

import (
	"fmt"
	"testing"
)

// Microbenchmarks for the hot path of every atomic section: semantic
// lock acquisition (fast path, slow path, wildcard conflict scan),
// mechanism-level contention, and Txn bookkeeping. Run with
// `go test -bench . ./internal/core`; CI smoke-runs them with
// -benchtime 10x. The *V1 variants measure the pre-v2 mechanism
// (ablation A5) for comparison.

// benchTable mirrors mapTable for benchmarks (no *testing.T).
func benchTable(n int) *ModeTable {
	sets := []SymSet{
		SymSetOf(SymOpOf("get", VarArg("k")), SymOpOf("put", VarArg("k"), Star()), SymOpOf("remove", VarArg("k"))),
		SymSetOf(SymOpOf("size")),
	}
	return NewModeTable(mapSpec(), sets, TableOptions{Phi: NewPhi(n)})
}

func benchKeyMode(tbl *ModeTable, k Value) ModeID {
	return tbl.Set(SymSetOf(
		SymOpOf("get", VarArg("k")), SymOpOf("put", VarArg("k"), Star()), SymOpOf("remove", VarArg("k")),
	)).Mode(k)
}

func benchSizeMode(tbl *ModeTable) ModeID {
	return tbl.Set(SymSetOf(SymOpOf("size"))).Mode()
}

// BenchmarkSemanticAcquireFastPath is the uncontended fine-grained
// acquisition: one claim, one short scan, one release.
func BenchmarkSemanticAcquireFastPath(b *testing.B) {
	tbl := benchTable(64)
	s := NewSemantic(tbl)
	m := benchKeyMode(tbl, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Acquire(m)
		s.Release(m)
	}
}

func BenchmarkSemanticAcquireFastPathV1(b *testing.B) {
	tbl := benchTable(64)
	s := NewSemantic(tbl)
	s.DisableMechV2 = true
	m := benchKeyMode(tbl, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Acquire(m)
		s.Release(m)
	}
}

// BenchmarkSemanticAcquirePartitioned is the fast path of the common
// case after partitioning: a fine-grained-only class (no wildcard), so
// each key mode lives in its own small mechanism with summaries
// statically off — one RMW per claim, v1 parity plus padding.
func BenchmarkSemanticAcquirePartitioned(b *testing.B) {
	keySet := SymSetOf(SymOpOf("get", VarArg("k")), SymOpOf("put", VarArg("k"), Star()), SymOpOf("remove", VarArg("k")))
	tbl := NewModeTable(mapSpec(), []SymSet{keySet}, TableOptions{Phi: NewPhi(64)})
	s := NewSemantic(tbl)
	m := tbl.Set(keySet).Mode(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Acquire(m)
		s.Release(m)
	}
}

func BenchmarkSemanticAcquirePartitionedV1(b *testing.B) {
	keySet := SymSetOf(SymOpOf("get", VarArg("k")), SymOpOf("put", VarArg("k"), Star()), SymOpOf("remove", VarArg("k")))
	tbl := NewModeTable(mapSpec(), []SymSet{keySet}, TableOptions{Phi: NewPhi(64)})
	s := NewSemantic(tbl)
	s.DisableMechV2 = true
	m := tbl.Set(keySet).Mode(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Acquire(m)
		s.Release(m)
	}
}

// BenchmarkSemanticAcquireWildcard acquires the size mode, whose
// conflict list covers all 64 per-bucket put slots: the v1 mechanism
// scans 64 counters per acquisition, v2 scans the word summaries.
func BenchmarkSemanticAcquireWildcard(b *testing.B) {
	tbl := benchTable(64)
	s := NewSemantic(tbl)
	m := benchSizeMode(tbl)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Acquire(m)
		s.Release(m)
	}
}

func BenchmarkSemanticAcquireWildcardV1(b *testing.B) {
	tbl := benchTable(64)
	s := NewSemantic(tbl)
	s.DisableMechV2 = true
	m := benchSizeMode(tbl)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Acquire(m)
		s.Release(m)
	}
}

// BenchmarkSemanticAcquireSlowPath forces every acquisition through the
// internal lock (ablation A4's configuration).
func BenchmarkSemanticAcquireSlowPath(b *testing.B) {
	tbl := benchTable(64)
	s := NewSemantic(tbl)
	s.DisableFastPath = true
	m := benchKeyMode(tbl, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Acquire(m)
		s.Release(m)
	}
}

// BenchmarkMechanismContended mixes self-conflicting same-bucket
// acquisitions from parallel goroutines — the blocking/wakeup path.
func BenchmarkMechanismContended(b *testing.B) {
	for _, mech := range []string{"v2", "v1"} {
		b.Run(mech, func(b *testing.B) {
			tbl := benchTable(4)
			s := NewSemantic(tbl)
			s.DisableMechV2 = mech == "v1"
			m := benchKeyMode(tbl, 1)
			b.SetParallelism(4)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					s.Acquire(m)
					s.Release(m)
				}
			})
		})
	}
}

// BenchmarkTxnLockUnlockAll is a whole-transaction lock cycle over 8
// instances, the shape of a synthesized multi-instance atomic section.
func BenchmarkTxnLockUnlockAll(b *testing.B) {
	tbl := benchTable(64)
	sems := make([]*Semantic, 8)
	for i := range sems {
		sems[i] = NewSemantic(tbl)
	}
	m := benchKeyMode(tbl, 3)
	txn := NewTxn()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r, s := range sems {
			txn.Lock(s, m, r)
		}
		txn.UnlockAll()
		txn.Reset()
	}
}

// BenchmarkTxnHolds shows the Holds small-array-then-map crossover: the
// per-transaction cost of locking N instances is O(N²) with the linear
// LOCAL_SET scan and O(N) once the membership index kicks in past
// holdsIndexThreshold.
func BenchmarkTxnHolds(b *testing.B) {
	// A get-only set conflicts with nothing, so its mode needs no
	// mechanism and Acquire is free: the benchmark isolates Txn
	// bookkeeping.
	getSet := SymSetOf(SymOpOf("get", VarArg("k")))
	tbl := NewModeTable(mapSpec(), []SymSet{getSet}, TableOptions{Phi: NewPhi(4)})
	m := tbl.Set(getSet).Mode(1)
	for _, n := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("held=%d", n), func(b *testing.B) {
			sems := make([]*Semantic, n)
			for i := range sems {
				sems[i] = NewSemantic(tbl)
			}
			txn := NewTxn()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r, s := range sems {
					txn.Lock(s, m, r)
				}
				txn.UnlockAll()
				txn.Reset()
			}
		})
	}
}
