package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomSpec builds a random commutativity specification: a few methods
// of arity 0–2 with random conditions drawn from the algebra.
func randomSpec(rng *rand.Rand, name string) *Spec {
	n := 2 + rng.Intn(3)
	sigs := make([]MethodSig, n)
	for i := range sigs {
		sigs[i] = MethodSig{Name: fmt.Sprintf("m%d", i), Arity: rng.Intn(3)}
	}
	s := NewSpec(name, sigs...)
	cond := func(a1, a2 int) Cond {
		switch rng.Intn(5) {
		case 0:
			return Always
		case 1:
			return Never
		case 2:
			if a1 > 0 && a2 > 0 {
				return ArgsNE(rng.Intn(a1), rng.Intn(a2))
			}
			return Never
		case 3:
			if a1 > 0 && a2 > 0 {
				return OrCond(ArgsNE(rng.Intn(a1), rng.Intn(a2)), ArgsEQ(rng.Intn(a1), rng.Intn(a2)))
			}
			return Always
		default:
			if a1 > 0 && a2 > 0 {
				return AndCond(ArgsNE(rng.Intn(a1), rng.Intn(a2)), ArgsNE(rng.Intn(a1), rng.Intn(a2)))
			}
			return Never
		}
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			s.Commute(sigs[i].Name, sigs[j].Name, cond(sigs[i].Arity, sigs[j].Arity))
		}
	}
	return s
}

// randomSets builds random symbolic sets over the spec's methods using
// variables {a, b}, constants and stars.
func randomSets(rng *rand.Rand, s *Spec) []SymSet {
	varNames := []string{"a", "b"}
	nSets := 1 + rng.Intn(3)
	out := make([]SymSet, 0, nSets)
	for i := 0; i < nSets; i++ {
		methods := s.Methods()
		nOps := 1 + rng.Intn(2)
		ops := make([]SymOp, 0, nOps)
		for j := 0; j < nOps; j++ {
			m := methods[rng.Intn(len(methods))]
			args := make([]SymArg, m.Arity)
			for k := range args {
				switch rng.Intn(3) {
				case 0:
					args[k] = Star()
				case 1:
					args[k] = VarArg(varNames[rng.Intn(len(varNames))])
				default:
					args[k] = ConstArg(rng.Intn(4))
				}
			}
			ops = append(ops, SymOpOf(m.Name, args...))
		}
		out = append(out, SymSetOf(ops...))
	}
	return out
}

// TestRandomTableSoundness is the property at the heart of the system:
// for random specifications and random symbolic sets, whenever the
// compiled table declares two modes commutative, EVERY pair of concrete
// operations covered by those modes commutes per the specification.
// (The converse — completeness — is not required: F_c may be
// conservative.)
func TestRandomTableSoundness(t *testing.T) {
	domain := []Value{0, 1, 2, 3, 4, 5}
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		spec := randomSpec(rng, fmt.Sprintf("R%d", seed))
		sets := randomSets(rng, spec)
		tbl := NewModeTable(spec, sets, TableOptions{Phi: NewPhi(1 + rng.Intn(3))})
		phi := tbl.Phi()

		// Concrete operation universe.
		var ops []Op
		for _, m := range spec.Methods() {
			switch m.Arity {
			case 0:
				ops = append(ops, NewOp(m.Name))
			case 1:
				for _, v := range domain {
					ops = append(ops, NewOp(m.Name, v))
				}
			case 2:
				for _, v := range domain[:3] {
					for _, w := range domain[:3] {
						ops = append(ops, NewOp(m.Name, v, w))
					}
				}
			}
		}

		modes := tbl.Modes()
		for i := range modes {
			for j := range modes {
				if !tbl.Commute(ModeID(i), ModeID(j)) {
					continue
				}
				for _, oa := range ops {
					if !modes[i].Covers(oa, phi) {
						continue
					}
					for _, ob := range ops {
						if !modes[j].Covers(ob, phi) {
							continue
						}
						if !spec.OpsCommute(oa, ob) {
							t.Fatalf("seed %d: F_c(%s, %s)=true but %s / %s conflict (spec cond %s)",
								seed, modes[i], modes[j], oa, ob, spec.Cond(oa.Method, ob.Method))
						}
					}
				}
			}
		}
	}
}

// TestRandomModeSelectionCoverage: for random tables, the mode selected
// for concrete values always covers the operations formed from those
// values — i.e. dynamic mode selection (§5.1) never under-locks.
func TestRandomModeSelectionCoverage(t *testing.T) {
	for seed := int64(100); seed < 140; seed++ {
		rng := rand.New(rand.NewSource(seed))
		spec := randomSpec(rng, fmt.Sprintf("C%d", seed))
		sets := randomSets(rng, spec)
		tbl := NewModeTable(spec, sets, TableOptions{Phi: NewPhi(1 + rng.Intn(4))})
		for _, set := range sets {
			ref := tbl.Set(set)
			vars := ref.Vars()
			for trial := 0; trial < 10; trial++ {
				env := map[string]Value{}
				vals := make([]Value, len(vars))
				for i, v := range vars {
					vals[i] = rng.Intn(6)
					env[v] = vals[i]
				}
				mode := ref.Mode(vals...)
				// Every concrete operation denoted by the set under env
				// (with * positions instantiated arbitrarily) must be
				// covered by the selected mode.
				for _, so := range set {
					args := make([]Value, len(so.Args))
					for i, a := range so.Args {
						switch a.Kind {
						case SymVar:
							args[i] = env[a.Var]
						case SymConst:
							args[i] = a.Val
						default:
							args[i] = rng.Intn(6) // any value for *
						}
					}
					op := NewOp(so.Method, args...)
					if !tbl.CoversOp(mode, op) {
						t.Fatalf("seed %d: mode %s for set %s env %v misses %s",
							seed, tbl.Mode(mode), set, env, op)
					}
				}
			}
		}
	}
}
