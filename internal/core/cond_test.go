package core

import "testing"

func TestCondConcrete(t *testing.T) {
	if !Always.Holds([]Value{1}, []Value{1}) {
		t.Error("Always must hold")
	}
	if Never.Holds([]Value{1}, []Value{2}) {
		t.Error("Never must not hold")
	}
	ne := ArgsNE(0, 0)
	if ne.Holds([]Value{7}, []Value{7}) {
		t.Error("ArgsNE(0,0) on (7,7) must be false")
	}
	if !ne.Holds([]Value{7}, []Value{10}) {
		t.Error("ArgsNE(0,0) on (7,10) must be true")
	}
	eq := ArgsEQ(0, 1)
	if !eq.Holds([]Value{"k"}, []Value{"other", "k"}) {
		t.Error("ArgsEQ(0,1) should hold")
	}
}

func TestCondSwapped(t *testing.T) {
	// add(v) vs contains(v') commute when v ≠ v'; looked up the other way
	// around, the indices must swap roles.
	ne := ArgsNE(0, 1)
	sw := ne.Swapped()
	a := []Value{10, 20}
	b := []Value{20}
	if ne.Holds(b, a) { // b0=20 vs a1=20 → equal → false
		t.Error("ArgsNE(0,1) mis-evaluated")
	}
	if sw.Holds(a, b) { // swapped: a1=20 vs b0=20 → false
		t.Error("swapped ArgsNE should compare the same positions")
	}
	if !sw.Holds([]Value{10, 99}, b) {
		t.Error("swapped ArgsNE should hold for distinct values")
	}
}

func TestCondAndOr(t *testing.T) {
	c := AndCond(ArgsNE(0, 0), ArgsNE(1, 1))
	if !c.Holds([]Value{1, 2}, []Value{3, 4}) {
		t.Error("conjunction should hold when both do")
	}
	if c.Holds([]Value{1, 2}, []Value{1, 4}) {
		t.Error("conjunction should fail when one side fails")
	}
	d := OrCond(ArgsNE(0, 0), ArgsNE(1, 1))
	if !d.Holds([]Value{1, 2}, []Value{1, 4}) {
		t.Error("disjunction should hold when one side does")
	}
	if d.Holds([]Value{1, 2}, []Value{1, 2}) {
		t.Error("disjunction should fail when both fail")
	}
	if AndCond() != Always || OrCond() != Never {
		t.Error("empty conjunction/disjunction identities wrong")
	}
}

func TestCondDefinitelyNE(t *testing.T) {
	phi := NewFixedPhi(2, 0, map[Value]int{5: 0, 6: 1})
	ne := ArgsNE(0, 0)
	cases := []struct {
		a, b ModeArg
		want bool
	}{
		{MConst(5), MConst(6), true},   // distinct constants
		{MConst(5), MConst(5), false},  // same constant
		{MConst(5), MAbs(1), true},     // φ(5)=α1(0) ≠ α2 → disjoint
		{MConst(5), MAbs(0), false},    // 5 lies in bucket α1
		{MAbs(0), MAbs(1), true},       // distinct buckets are disjoint
		{MAbs(0), MAbs(0), false},      // same bucket may hold equal values
		{MStar(), MConst(5), false},    // * overlaps everything
		{MAbs(1), MStar(), false},
	}
	for _, c := range cases {
		got := ne.Definitely([]ModeArg{c.a}, []ModeArg{c.b}, phi)
		if got != c.want {
			t.Errorf("NE.Definitely(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCondDefinitelyEQ(t *testing.T) {
	phi := NewFixedPhi(2, 0, nil)
	eq := ArgsEQ(0, 0)
	if !eq.Definitely([]ModeArg{MConst(3)}, []ModeArg{MConst(3)}, phi) {
		t.Error("equal constants must be definitely equal")
	}
	if eq.Definitely([]ModeArg{MAbs(0)}, []ModeArg{MAbs(0)}, phi) {
		t.Error("same abstract bucket must NOT be definitely equal")
	}
	if eq.Definitely([]ModeArg{MStar()}, []ModeArg{MStar()}, phi) {
		t.Error("* must not be definitely equal to anything")
	}
}

func TestCondDefinitelyCompound(t *testing.T) {
	phi := NewFixedPhi(4, 0, nil)
	and := AndCond(ArgsNE(0, 0), Always)
	if !and.Definitely([]ModeArg{MAbs(1)}, []ModeArg{MAbs(2)}, phi) {
		t.Error("AND with distinct buckets should be definite")
	}
	if and.Definitely([]ModeArg{MAbs(1)}, []ModeArg{MAbs(1)}, phi) {
		t.Error("AND with same bucket must be indefinite")
	}
	or := OrCond(Never, ArgsNE(0, 0))
	if !or.Definitely([]ModeArg{MAbs(1)}, []ModeArg{MAbs(3)}, phi) {
		t.Error("OR should be definite when a disjunct is")
	}
}

// TestCondSoundness checks, over a small concrete domain, that whenever a
// condition is Definitely true on mode arguments, it Holds for every pair
// of concrete values those arguments represent.
func TestCondSoundness(t *testing.T) {
	phi := NewPhi(3)
	domain := []Value{0, 1, 2, 3, 4, 5, 6, 7}
	margs := []ModeArg{MStar(), MAbs(0), MAbs(1), MAbs(2), MConst(3), MConst(4)}
	conds := []Cond{ArgsNE(0, 0), ArgsEQ(0, 0), AndCond(ArgsNE(0, 0)), OrCond(ArgsEQ(0, 0), ArgsNE(0, 0))}
	represents := func(a ModeArg, v Value) bool { return a.coversValue(v, phi) }
	for _, c := range conds {
		for _, ma := range margs {
			for _, mb := range margs {
				if !c.Definitely([]ModeArg{ma}, []ModeArg{mb}, phi) {
					continue
				}
				for _, va := range domain {
					if !represents(ma, va) {
						continue
					}
					for _, vb := range domain {
						if !represents(mb, vb) {
							continue
						}
						if !c.Holds([]Value{va}, []Value{vb}) {
							t.Fatalf("%s Definitely(%s,%s) but fails on (%v,%v)", c, ma, mb, va, vb)
						}
					}
				}
			}
		}
	}
}
