package core_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/adtspecs"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/papersec"
	"repro/internal/synth"
)

// TestCheckedAcquisitionOrderMatchesVerifier cross-checks the runtime
// against the static certificate: internal/verify proves (ordering
// obligation) that every path acquires locks in strictly increasing
// class-rank order, with an LV2 group as one dynamically id-ordered
// event. Here concurrent checked executions of the synthesized Fig 7
// section record their actual acquisition logs, and each log must be
// exactly a realization of that prediction — ranks strictly increasing
// across events, ids strictly increasing inside an equal-rank group,
// every rank and group width drawn from the section's lock statements.
// Run under -race this also exercises the lock mechanism itself.
func TestCheckedAcquisitionOrderMatchesVerifier(t *testing.T) {
	seeder := &ir.Atomic{
		Name: "seed",
		Vars: []ir.Param{
			{Name: "m", Type: "Map", IsADT: true, NonNull: true},
			{Name: "s", Type: "Set", IsADT: true, NonNull: true},
			{Name: "k", Type: "int"},
		},
		Body: ir.Block{
			&ir.Call{Recv: "m", Method: "put", Args: []ir.Expr{ir.VarRef{Name: "k"}, ir.VarRef{Name: "s"}}},
		},
	}
	res, err := synth.Synthesize(
		&synth.Program{Sections: []*ir.Atomic{papersec.Fig7(), seeder}, Specs: adtspecs.All()},
		synth.DefaultOptions(), // Verify: true — synthesis fails unless the certificate holds
	)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if vs := synth.VerifyResult(res); len(vs) > 0 {
		t.Fatalf("certificate does not hold: %v", vs[0])
	}

	// Static prediction from the verified section: the event rank of
	// every lock statement, and the group width (an LV2 may contribute
	// up to len(Vars) acquisitions at its rank).
	maxAtRank := map[int]int{}
	var collect func(b ir.Block)
	collect = func(b ir.Block) {
		for _, s := range b {
			switch x := s.(type) {
			case *ir.LV:
				k, _ := res.Classes.ClassOfVar(0, x.Var)
				if n := maxAtRank[res.Rank(k)]; n < 1 {
					maxAtRank[res.Rank(k)] = 1
				}
			case *ir.LV2:
				k, _ := res.Classes.ClassOfVar(0, x.Vars[0])
				if n := maxAtRank[res.Rank(k)]; n < len(x.Vars) {
					maxAtRank[res.Rank(k)] = len(x.Vars)
				}
			case *ir.If:
				collect(x.Then)
				collect(x.Else)
			case *ir.While:
				collect(x.Body)
			}
		}
	}
	collect(res.Sections[0].Body)
	if len(maxAtRank) < 2 {
		t.Fatalf("fig7 should lock several classes, got rank map %v", maxAtRank)
	}

	e := interp.NewExecutor(res, true)
	e.EvalOpaque = func(text string, env map[string]core.Value) core.Value {
		if text == "s1!=null && s2!=null" {
			return env["s1"] != nil && env["s2"] != nil
		}
		t.Fatalf("unexpected opaque condition %q", text)
		return nil
	}
	m := e.NewInstance("Map", "Map")
	q := e.NewInstance("Queue", "Queue")
	const keys = 4
	for k := 0; k < keys; k++ {
		env := map[string]core.Value{"m": m, "s": e.NewInstance("Set", "Set"), "k": k}
		if err := e.Run(1, env); err != nil {
			t.Fatalf("seed: %v", err)
		}
	}

	const goroutines, iters = 4, 200
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			tx := core.NewCheckedTxn()
			for i := 0; i < iters; i++ {
				tx.Reset()
				if n := len(tx.Acquisitions()); n != 0 {
					errs <- errorf("Reset kept %d acquisitions", n)
					return
				}
				env := map[string]core.Value{
					"m": m, "q": q, "s1": nil, "s2": nil,
					"key1": rng.Intn(keys), "key2": rng.Intn(keys),
				}
				if err := e.RunWithTxn(0, env, tx, nil); err != nil {
					errs <- err
					return
				}
				if err := checkLog(tx.Acquisitions(), maxAtRank); err != nil {
					errs <- err
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// checkLog asserts one transaction's acquisition log realizes the
// verifier's predicted order.
func checkLog(log []core.Acquisition, maxAtRank map[int]int) error {
	for i := 0; i < len(log); {
		j := i
		for j < len(log) && log[j].Rank == log[i].Rank {
			j++
		}
		width, known := maxAtRank[log[i].Rank]
		if !known {
			return errorf("acquisition at rank %d matches no lock statement", log[i].Rank)
		}
		if j-i > width {
			return errorf("%d acquisitions at rank %d, statically at most %d", j-i, log[i].Rank, width)
		}
		for k := i + 1; k < j; k++ {
			if log[k].ID <= log[k-1].ID {
				return errorf("ids not increasing within rank %d group: %v", log[i].Rank, log)
			}
		}
		if j < len(log) && log[j].Rank < log[i].Rank {
			return errorf("ranks not increasing: %v", log)
		}
		i = j
	}
	return nil
}

func errorf(format string, args ...any) error { return fmt.Errorf(format, args...) }
