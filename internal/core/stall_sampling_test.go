package core

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// These tests pin the wait-duration contract after the sampling gate:
// getWaiter only stamps a park timestamp when the mechanism is watched
// or SetWaitTiming is on, so every consumer of a wait duration must
// either not depend on the timestamp (StallError measures its own
// clock) or say explicitly when it is reporting a bound rather than a
// measurement (WaiterInfo.Sampled).

// TestStallErrorWaitedUnwatched: a bounded acquisition that times out
// on an instance nobody watches must still report a real, measured wait
// duration — the timeout path has its own clock and never depended on
// the waiter timestamp.
func TestStallErrorWaitedUnwatched(t *testing.T) {
	tbl := mapTable(t, 1, TableOptions{}) // n=1: key modes conflict with size
	s := NewSemantic(tbl)
	km, sm := keyMode(tbl, 1), sizeMode(tbl)
	s.Acquire(km)
	defer s.Release(km)

	const patience = 30 * time.Millisecond
	err := s.AcquireWithin(sm, patience)
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want *StallError", err)
	}
	if se.Waited < patience {
		t.Errorf("StallError.Waited = %v, want >= %v (unwatched instance must measure its own wait)",
			se.Waited, patience)
	}
	if len(se.Holders) == 0 {
		t.Error("StallError names no holders")
	}
	if got := s.Stats().Stalls; got != 1 {
		t.Errorf("Stats().Stalls = %d, want 1", got)
	}
}

// TestWatchdogReportsPreWatchWaiter: a waiter that parked before the
// instance was watched carries no timestamp, but the sampler must not
// skip it — it reports the wait as a growing lower bound with Sampled
// false, and the report renders the bound with a "≥" prefix.
func TestWatchdogReportsPreWatchWaiter(t *testing.T) {
	prev := WaitTimingEnabled()
	SetWaitTiming(false)
	defer SetWaitTiming(prev)

	tbl := mapTable(t, 1, TableOptions{})
	s := NewSemantic(tbl)
	km, sm := keyMode(tbl, 1), sizeMode(tbl)
	s.Acquire(km)

	acquired := make(chan struct{})
	go func() {
		s.Acquire(sm) // parks: conflicts with km, nobody watching yet
		close(acquired)
	}()
	// Wait for the waiter to actually register (past the adaptive spin).
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mechs[0].mu.Lock()
		n := len(s.mechs[0].waiters)
		s.mechs[0].mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never registered")
		}
		time.Sleep(time.Millisecond)
	}

	d := NewWatchdog(WatchdogConfig{Threshold: 5 * time.Millisecond})
	d.Watch(s)
	time.Sleep(15 * time.Millisecond) // let the lower bound cross the threshold

	reports := d.Scan()
	if len(reports) == 0 {
		t.Fatal("pre-Watch waiter was not reported")
	}
	r := reports[0]
	if len(r.Waiters) != 1 {
		t.Fatalf("report waiters = %+v, want exactly 1", r.Waiters)
	}
	w := r.Waiters[0]
	if w.Sampled {
		t.Error("pre-Watch waiter reported as Sampled; its true park time is unknown")
	}
	if w.Waited <= 0 {
		t.Errorf("lower-bound Waited = %v, want > 0", w.Waited)
	}
	if str := r.String(); !strings.Contains(str, "≥") {
		t.Errorf("report %q does not mark the unsampled bound with ≥", str)
	}

	// The bound keeps growing across scans — a stuck waiter can't hide.
	time.Sleep(10 * time.Millisecond)
	again := d.Scan()
	if len(again) == 0 || len(again[0].Waiters) != 1 {
		t.Fatal("waiter vanished from second scan")
	}
	if again[0].Waiters[0].Waited <= w.Waited {
		t.Errorf("lower bound did not grow: %v then %v", w.Waited, again[0].Waiters[0].Waited)
	}

	s.Release(km)
	<-acquired
	s.Release(sm)
}

// TestWatchdogSampledWaiter: once the instance is watched, new waiters
// carry measured timestamps and report Sampled true with no "≥".
func TestWatchdogSampledWaiter(t *testing.T) {
	tbl := mapTable(t, 1, TableOptions{})
	s := NewSemantic(tbl)
	km, sm := keyMode(tbl, 1), sizeMode(tbl)

	d := NewWatchdog(WatchdogConfig{Threshold: 5 * time.Millisecond})
	d.Watch(s)

	s.Acquire(km)
	acquired := make(chan struct{})
	go func() {
		s.Acquire(sm)
		close(acquired)
	}()
	time.Sleep(20 * time.Millisecond)

	reports := d.Scan()
	if len(reports) == 0 {
		t.Fatal("watched waiter not reported")
	}
	w := reports[0].Waiters[0]
	if !w.Sampled {
		t.Error("post-Watch waiter reported as unsampled")
	}
	if w.Waited <= 0 {
		t.Errorf("Waited = %v, want > 0", w.Waited)
	}
	if str := reports[0].String(); strings.Contains(str, "≥") {
		t.Errorf("sampled wait rendered as a bound: %q", str)
	}

	s.Release(km)
	<-acquired
	s.Release(sm)
}

// TestWaitNanosGating: LockStats.WaitNanos accumulates only when wait
// timing is on (globally or via a watchdog); otherwise blocking costs
// no clock call and the counter stays zero.
func TestWaitNanosGating(t *testing.T) {
	block := func(s *Semantic, km, sm ModeID) {
		s.Acquire(km)
		acquired := make(chan struct{})
		go func() {
			s.Acquire(sm)
			close(acquired)
		}()
		time.Sleep(20 * time.Millisecond)
		s.Release(km)
		<-acquired
		s.Release(sm)
	}

	prev := WaitTimingEnabled()
	defer SetWaitTiming(prev)

	SetWaitTiming(false)
	tbl := mapTable(t, 1, TableOptions{})
	s := NewSemantic(tbl)
	block(s, keyMode(tbl, 1), sizeMode(tbl))
	if st := s.Stats(); st.WaitNanos != 0 {
		t.Errorf("WaitNanos = %d with timing off, want 0", st.WaitNanos)
	}

	SetWaitTiming(true)
	s2 := NewSemantic(tbl)
	block(s2, keyMode(tbl, 1), sizeMode(tbl))
	if st := s2.Stats(); st.Waits == 0 || st.WaitNanos <= 0 {
		t.Errorf("stats = %+v with timing on, want measured WaitNanos > 0", st)
	}
}

// TestBatchStatsContract: one AcquireBatch counts once per mechanism
// group in LockStats — Batches 1, FastPath 1 on the optimistic path —
// so FastPath+Slow-Batches recovers the single-mode acquisition count.
func TestBatchStatsContract(t *testing.T) {
	tbl := mapTable(t, 8, TableOptions{})
	s := NewSemantic(tbl)
	m0, m1 := keyMode(tbl, 0), keyMode(tbl, 1)
	if m0 == m1 {
		t.Fatal("test premise: distinct key modes")
	}
	s.AcquireBatch(m0, m1)
	st := s.Stats()
	if st.Batches != 1 || st.FastPath+st.Slow != 1 {
		t.Errorf("stats after one batched acquisition = %+v, want Batches=1 counted once in FastPath+Slow", st)
	}
	s.Release(m0)
	s.Release(m1)
}
