// Package core implements the semantic-locking runtime of
// "Automatic Scalable Atomicity via Semantic Locking" (PPoPP 2015):
// runtime operations, symbolic operations and symbolic sets (§2.2.1),
// commutativity specifications and conditions (§5.2, Fig 3b), abstract
// values via a hash φ (§5.1), locking modes and the commutativity
// function F_c (§5.1–5.2, Fig 19), the per-ADT lock mechanism with
// per-mode counters (Fig 20), lock partitioning (§5.2), and the
// transaction layer enforcing the S2PL/OS2PL protocols (§2.3).
package core

import (
	"fmt"
	"sort"
	"strings"
)

// Value is a runtime argument value of an ADT operation. Values must be
// comparable with == (the usual Go map-key restriction); this mirrors the
// paper's Value domain over which operations and the hash φ range.
type Value = any

// Op is a runtime operation (§2.1): a method name plus runtime argument
// values, not including the receiver ADT instance. Op values are used by
// the protocol checker to decide whether a held locking mode covers an
// invocation.
type Op struct {
	Method string
	Args   []Value
}

// NewOp constructs a runtime operation.
func NewOp(method string, args ...Value) Op {
	return Op{Method: method, Args: args}
}

// String renders the operation as in the paper, e.g. "add(7)".
func (o Op) String() string {
	parts := make([]string, len(o.Args))
	for i, a := range o.Args {
		parts[i] = fmt.Sprint(a)
	}
	return o.Method + "(" + strings.Join(parts, ",") + ")"
}

// SymArgKind discriminates the three forms a symbolic-operation argument
// can take in a symbolic set (§2.2.1): a program variable, the wildcard *,
// or a constant value.
type SymArgKind uint8

const (
	// SymStar is the * wildcard: it refers to all possible values.
	SymStar SymArgKind = iota
	// SymVar names a program variable whose runtime value is looked up
	// in the environment σ when the lock call executes.
	SymVar
	// SymConst is a literal value.
	SymConst
)

// SymArg is one argument position of a symbolic operation.
type SymArg struct {
	Kind SymArgKind
	Var  string // valid when Kind == SymVar
	Val  Value  // valid when Kind == SymConst
}

// Star returns the wildcard argument *.
func Star() SymArg { return SymArg{Kind: SymStar} }

// VarArg returns a symbolic argument naming program variable v.
func VarArg(v string) SymArg { return SymArg{Kind: SymVar, Var: v} }

// ConstArg returns a symbolic argument holding the literal value v.
func ConstArg(v Value) SymArg { return SymArg{Kind: SymConst, Val: v} }

// String renders the argument: "*", the variable name, or the constant.
func (a SymArg) String() string {
	switch a.Kind {
	case SymStar:
		return "*"
	case SymVar:
		return a.Var
	default:
		return fmt.Sprint(a.Val)
	}
}

// SymOp is a symbolic operation p(a1,...,an) over Var ∪ {*} ∪ constants
// (§2.2.1). A symbolic operation denotes, for a given environment σ, the
// set of runtime operations [SY](σ).
type SymOp struct {
	Method string
	Args   []SymArg
}

// SymOpOf builds a symbolic operation.
func SymOpOf(method string, args ...SymArg) SymOp {
	return SymOp{Method: method, Args: args}
}

// String renders the symbolic operation, e.g. "put(id,*)".
func (s SymOp) String() string {
	parts := make([]string, len(s.Args))
	for i, a := range s.Args {
		parts[i] = a.String()
	}
	return s.Method + "(" + strings.Join(parts, ",") + ")"
}

// Vars appends the program variables mentioned by the symbolic operation
// to dst and returns it.
func (s SymOp) Vars(dst []string) []string {
	for _, a := range s.Args {
		if a.Kind == SymVar {
			dst = append(dst, a.Var)
		}
	}
	return dst
}

// IsConstant reports whether the symbolic operation mentions no program
// variables (every argument is * or a constant) — §5.1's "constant
// symbolic set" criterion, per operation.
func (s SymOp) IsConstant() bool {
	for _, a := range s.Args {
		if a.Kind == SymVar {
			return false
		}
	}
	return true
}

// SymSet is a symbolic set: a set of symbolic operations (§2.2.1). The
// slice is kept sorted by the canonical rendering so that equal sets
// compare equal via Key().
type SymSet []SymOp

// SymSetOf builds a normalized symbolic set.
func SymSetOf(ops ...SymOp) SymSet {
	s := make(SymSet, len(ops))
	copy(s, ops)
	s.normalize()
	return s
}

func (s SymSet) normalize() {
	sort.Slice(s, func(i, j int) bool { return s[i].String() < s[j].String() })
}

// Key returns a canonical string for the set, usable as a map key.
func (s SymSet) Key() string {
	parts := make([]string, len(s))
	for i, op := range s {
		parts[i] = op.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// String renders the set as in the paper, e.g. "{get(id),put(id,*)}".
func (s SymSet) String() string { return s.Key() }

// Vars returns the sorted, de-duplicated program variables mentioned by
// the set. A set with no variables is a constant symbolic set (§5.1).
func (s SymSet) Vars() []string {
	var vs []string
	for _, op := range s {
		vs = op.Vars(vs)
	}
	sort.Strings(vs)
	return dedupStrings(vs)
}

// IsConstant reports whether the set is a constant symbolic set (§5.1).
func (s SymSet) IsConstant() bool { return len(s.Vars()) == 0 }

// Union returns the normalized union of two symbolic sets, dropping
// duplicates.
func (s SymSet) Union(t SymSet) SymSet {
	seen := make(map[string]bool, len(s)+len(t))
	var out SymSet
	for _, op := range s {
		if k := op.String(); !seen[k] {
			seen[k] = true
			out = append(out, op)
		}
	}
	for _, op := range t {
		if k := op.String(); !seen[k] {
			seen[k] = true
			out = append(out, op)
		}
	}
	out.normalize()
	return out
}

// Equal reports set equality.
func (s SymSet) Equal(t SymSet) bool { return s.Key() == t.Key() }

// Covers reports whether runtime operation op belongs to [s](σ) for the
// environment σ (a mapping from variable names to runtime values). This
// realizes the denotation [SY](σ) from §2.2.1.
func (s SymSet) Covers(op Op, env map[string]Value) bool {
	for _, so := range s {
		if so.covers(op, env) {
			return true
		}
	}
	return false
}

func (so SymOp) covers(op Op, env map[string]Value) bool {
	if so.Method != op.Method || len(so.Args) != len(op.Args) {
		return false
	}
	for i, a := range so.Args {
		switch a.Kind {
		case SymStar:
			// matches any value
		case SymConst:
			if a.Val != op.Args[i] {
				return false
			}
		case SymVar:
			v, ok := env[a.Var]
			if !ok || v != op.Args[i] {
				return false
			}
		}
	}
	return true
}

func dedupStrings(xs []string) []string {
	if len(xs) == 0 {
		return xs
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
