package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// exclusiveTable builds a table with a single self-conflicting mode
// (an exclusive lock) plus two mutually-commuting per-bucket modes.
func mapTable(t *testing.T, n int, opts TableOptions) *ModeTable {
	t.Helper()
	if opts.Phi == nil {
		opts.Phi = NewPhi(n)
	}
	sets := []SymSet{
		SymSetOf(SymOpOf("get", VarArg("k")), SymOpOf("put", VarArg("k"), Star()), SymOpOf("remove", VarArg("k"))),
		SymSetOf(SymOpOf("size")),
	}
	return NewModeTable(mapSpec(), sets, opts)
}

func keyMode(tbl *ModeTable, k Value) ModeID {
	return tbl.Set(SymSetOf(
		SymOpOf("get", VarArg("k")), SymOpOf("put", VarArg("k"), Star()), SymOpOf("remove", VarArg("k")),
	)).Mode(k)
}

func sizeMode(tbl *ModeTable) ModeID {
	return tbl.Set(SymSetOf(SymOpOf("size"))).Mode()
}

// TestMutualExclusionConflicting: two goroutines repeatedly acquiring
// non-commuting modes must never be inside the critical section
// together.
func TestMutualExclusionConflicting(t *testing.T) {
	tbl := mapTable(t, 1, TableOptions{}) // n=1: every key mode conflicts with size
	s := NewSemantic(tbl)
	km := keyMode(tbl, 7)
	sm := sizeMode(tbl)
	if tbl.Commute(km, sm) {
		t.Fatal("test premise: key mode and size mode must conflict")
	}
	var inside atomic.Int32
	var violations atomic.Int32
	var wg sync.WaitGroup
	const iters = 2000
	run := func(m ModeID) {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			s.Acquire(m)
			if inside.Add(1) != 1 {
				violations.Add(1)
			}
			inside.Add(-1)
			s.Release(m)
		}
	}
	wg.Add(2)
	go run(km)
	go run(sm)
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Errorf("%d mutual-exclusion violations", v)
	}
}

// TestSelfConflictingMode: a mode with F_c(m,m)=false behaves as an
// exclusive lock among its own holders.
func TestSelfConflictingMode(t *testing.T) {
	tbl := mapTable(t, 1, TableOptions{})
	s := NewSemantic(tbl)
	km := keyMode(tbl, 3) // with n=1, put(α1,*) self-conflicts... verify
	if tbl.Commute(km, km) {
		t.Skip("premise: key mode self-commutes in this configuration")
	}
	var inside, violations atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Acquire(km)
				if inside.Add(1) != 1 {
					violations.Add(1)
				}
				inside.Add(-1)
				s.Release(km)
			}
		}()
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Errorf("%d exclusion violations on self-conflicting mode", v)
	}
}

// TestCommutingModesRunConcurrently: holders of commuting modes must not
// block each other — a second acquire while the first is held completes.
func TestCommutingModesRunConcurrently(t *testing.T) {
	phi := NewFixedPhi(2, 1, map[Value]int{1: 0})
	tbl := mapTable(t, 2, TableOptions{Phi: phi})
	s := NewSemantic(tbl)
	m1 := keyMode(tbl, 1) // bucket α1
	m2 := keyMode(tbl, 2) // bucket α2
	if !tbl.Commute(m1, m2) {
		t.Fatal("premise: distinct-bucket key modes must commute")
	}
	s.Acquire(m1)
	done := make(chan struct{})
	go func() {
		s.Acquire(m2) // must not block on m1
		s.Release(m2)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("commuting mode acquisition blocked")
	}
	s.Release(m1)
}

// TestSameModeMultipleHolders: a self-commuting mode admits many
// simultaneous holders (Example 2.4: two transactions may both hold
// {add(v) | v ∈ Value}).
func TestSameModeMultipleHolders(t *testing.T) {
	addSet := SymSetOf(SymOpOf("add", Star()))
	sizeSet := SymSetOf(SymOpOf("size"))
	tbl := NewModeTable(setSpec(), []SymSet{addSet, sizeSet}, TableOptions{Phi: NewPhi(2)})
	s := NewSemantic(tbl)
	add := tbl.Set(addSet).Mode()
	if !tbl.Commute(add, add) {
		t.Fatal("premise: {add(*)} must self-commute")
	}
	const holders = 8
	for i := 0; i < holders; i++ {
		done := make(chan struct{})
		go func() { s.Acquire(add); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("holder %d blocked on self-commuting mode", i)
		}
	}
	if got := s.Holders(add); got != holders {
		t.Fatalf("holders = %d, want %d", got, holders)
	}
	// size() conflicts with add(*) and must not sneak in.
	size := tbl.Set(sizeSet).Mode()
	if s.TryAcquire(size) {
		t.Fatal("size acquired while add holders present")
	}
	for i := 0; i < holders; i++ {
		s.Release(add)
	}
	if !s.TryAcquire(size) {
		t.Fatal("size blocked after all add holders released")
	}
	s.Release(size)
}

// TestBlockingAndWakeup: an acquirer of a conflicting mode blocks until
// release, then proceeds — no lost wakeups.
func TestBlockingAndWakeup(t *testing.T) {
	tbl := mapTable(t, 1, TableOptions{})
	s := NewSemantic(tbl)
	km, sm := keyMode(tbl, 7), sizeMode(tbl)
	s.Acquire(km)
	acquired := make(chan struct{})
	go func() {
		s.Acquire(sm)
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("conflicting acquire did not block")
	case <-time.After(50 * time.Millisecond):
	}
	s.Release(km)
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked acquirer never woke up")
	}
	s.Release(sm)
}

// TestTryAcquire covers the non-blocking path.
func TestTryAcquire(t *testing.T) {
	tbl := mapTable(t, 1, TableOptions{})
	s := NewSemantic(tbl)
	km, sm := keyMode(tbl, 7), sizeMode(tbl)
	if !s.TryAcquire(km) {
		t.Fatal("TryAcquire on free lock failed")
	}
	if s.TryAcquire(sm) {
		t.Fatal("TryAcquire of conflicting mode succeeded")
	}
	s.Release(km)
	if !s.TryAcquire(sm) {
		t.Fatal("TryAcquire after release failed")
	}
	s.Release(sm)
}

// TestNoFastPathStillCorrect runs the exclusion test with the fast path
// disabled (ablation A4).
func TestNoFastPathStillCorrect(t *testing.T) {
	tbl := mapTable(t, 1, TableOptions{})
	s := NewSemantic(tbl)
	s.DisableFastPath = true
	km, sm := keyMode(tbl, 7), sizeMode(tbl)
	var inside, violations atomic.Int32
	var wg sync.WaitGroup
	for _, m := range []ModeID{km, sm} {
		wg.Add(1)
		go func(m ModeID) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Acquire(m)
				if inside.Add(1) != 1 {
					violations.Add(1)
				}
				inside.Add(-1)
				s.Release(m)
			}
		}(m)
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Errorf("%d violations with fast path disabled", violations.Load())
	}
}

// TestManyThreadsMixedModes is a stress test mixing commuting and
// conflicting modes across buckets; it checks per-bucket exclusion
// between put-holders and size-holders and cross-bucket parallelism is
// at least not deadlocking.
func TestManyThreadsMixedModes(t *testing.T) {
	tbl := mapTable(t, 4, TableOptions{})
	s := NewSemantic(tbl)
	sm := sizeMode(tbl)
	var wg sync.WaitGroup
	insideKey := make([]atomic.Int32, 4)
	var insideSize atomic.Int32
	var violations atomic.Int32
	phi := tbl.Phi()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if g == 0 && i%10 == 0 {
					s.Acquire(sm)
					insideSize.Add(1)
					for b := range insideKey {
						if insideKey[b].Load() != 0 {
							violations.Add(1)
						}
					}
					insideSize.Add(-1)
					s.Release(sm)
					continue
				}
				k := (g*31 + i) % 64
				b := phi.Abstract(k)
				m := keyMode(tbl, k)
				s.Acquire(m)
				insideKey[b].Add(1)
				if insideSize.Load() != 0 {
					violations.Add(1)
				}
				insideKey[b].Add(-1)
				s.Release(m)
			}
		}(g)
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Errorf("%d size/put co-residence violations", v)
	}
}

func TestInstanceIDsUnique(t *testing.T) {
	tbl := mapTable(t, 2, TableOptions{})
	a, b := NewSemantic(tbl), NewSemantic(tbl)
	if a.ID() == b.ID() {
		t.Error("instance ids must be unique")
	}
	if a.Table() != tbl {
		t.Error("Table() must return the compile table")
	}
}

func TestHolders(t *testing.T) {
	tbl := mapTable(t, 1, TableOptions{})
	s := NewSemantic(tbl)
	km := keyMode(tbl, 1)
	if s.Holders(km) != 0 {
		t.Fatal("fresh lock has holders")
	}
	s.Acquire(km)
	if s.Holders(km) != 1 {
		t.Fatal("holder count wrong after acquire")
	}
	s.Release(km)
	if s.Holders(km) != 0 {
		t.Fatal("holder count wrong after release")
	}
}
