package core

// setSpec builds the Set ADT commutativity specification of Fig 3(b):
//
//	            add(v')  remove(v')  contains(v')  size()  clear()
//	add(v)      true     v≠v'        v≠v'          false   false
//	remove(v)            true        v≠v'          false   false
//	contains(v)                      true          true    false
//	size()                                         true    false
//	clear()                                                true
func setSpec() *Spec {
	s := NewSpec("Set",
		MethodSig{"add", 1},
		MethodSig{"remove", 1},
		MethodSig{"contains", 1},
		MethodSig{"size", 0},
		MethodSig{"clear", 0},
	)
	s.Commute("add", "add", Always)
	s.Commute("add", "remove", ArgsNE(0, 0))
	s.Commute("add", "contains", ArgsNE(0, 0))
	s.Commute("add", "size", Never)
	s.Commute("add", "clear", Never)
	s.Commute("remove", "remove", Always)
	s.Commute("remove", "contains", ArgsNE(0, 0))
	s.Commute("remove", "size", Never)
	s.Commute("remove", "clear", Never)
	s.Commute("contains", "contains", Always)
	s.Commute("contains", "size", Always)
	s.Commute("contains", "clear", Never)
	s.Commute("size", "size", Always)
	s.Commute("size", "clear", Never)
	s.Commute("clear", "clear", Always)
	return s
}

// mapSpec is a Map ADT specification in the style of Fig 3(b), used by
// mode-table and lock tests. get/put/remove on distinct keys commute;
// get/get always commute; put/put and put/remove on the same key do not.
func mapSpec() *Spec {
	s := NewSpec("Map",
		MethodSig{"get", 1},
		MethodSig{"put", 2},
		MethodSig{"remove", 1},
		MethodSig{"size", 0},
	)
	s.Commute("get", "get", Always)
	s.Commute("get", "put", ArgsNE(0, 0))
	s.Commute("get", "remove", ArgsNE(0, 0))
	s.Commute("get", "size", Always)
	s.Commute("put", "put", ArgsNE(0, 0))
	s.Commute("put", "remove", ArgsNE(0, 0))
	s.Commute("put", "size", Never)
	s.Commute("remove", "remove", Always)
	s.Commute("remove", "size", Never)
	s.Commute("size", "size", Always)
	return s
}
