package core

import "fmt"

// This file is the interned side of dynamic mode selection (§5.1). The
// reference path, ModeForValues, rebuilds a Mode value on every call:
// it allocates an assignment map, hashes each bound value through φ,
// and constructs fresh ModeOp/ModeArg slices. But the table already
// instantiated every mode a symbolic set can denote (setEntry.modes, a
// dense array indexed by the φ-images of the set's variables), so the
// hot path never needs to construct anything — it only needs the index.
// ModeCache exposes that interned lookup keyed by (symbolic-set id, φ
// of the bound abstract values); the Txn memo below goes one step
// further and skips even the φ hash when a section re-locks the same
// values.

// ModeCache interns dynamic mode selection for one ModeTable: for every
// (symbolic-set id, assignment of abstract values) it returns the
// table's canonical ModeID — and, on request, the interned Mode — with
// no construction, no map lookups, and no allocation. The backing store
// is the dense per-set table built at compilation, so the cache is
// complete from the start, never grows, and is safe for concurrent use.
type ModeCache struct {
	t *ModeTable
}

// Cache returns the table's mode cache.
func (t *ModeTable) Cache() *ModeCache { return &ModeCache{t: t} }

// SetID resolves a symbolic set to its dense id — the first component
// of the cache key. Resolve once at setup; the lookup hashes the set's
// canonical string key.
func (c *ModeCache) SetID(set SymSet) int {
	idx, ok := c.t.setIdx[set.Key()]
	if !ok {
		panic(fmt.Sprintf("core: symbolic set %s not registered in mode table", set))
	}
	return idx
}

// ModeAt returns the interned ModeID for the set and the given abstract
// values (φ already applied), in the set's canonical variable order.
func (c *ModeCache) ModeAt(setID int, abs ...int) ModeID {
	e := &c.t.sets[setID]
	if len(abs) != len(e.vars) {
		panic(fmt.Sprintf("core: set %s expects %d abstract values, got %d", e.set, len(e.vars), len(abs)))
	}
	idx := 0
	n := c.t.phi.N()
	for _, a := range abs {
		idx = idx*n + a
	}
	return e.modes[idx]
}

// Mode1 returns the interned ModeID of a one-variable set for value v.
func (c *ModeCache) Mode1(setID int, v Value) ModeID {
	e := &c.t.sets[setID]
	if len(e.vars) != 1 {
		panic(fmt.Sprintf("core: ModeCache.Mode1: set %s has %d variables", e.set, len(e.vars)))
	}
	return e.modes[c.t.phi.Abstract(v)]
}

// Mode2 returns the interned ModeID of a two-variable set for values
// (a, b) in the set's canonical variable order.
func (c *ModeCache) Mode2(setID int, a, b Value) ModeID {
	e := &c.t.sets[setID]
	if len(e.vars) != 2 {
		panic(fmt.Sprintf("core: ModeCache.Mode2: set %s has %d variables", e.set, len(e.vars)))
	}
	phi := c.t.phi
	return e.modes[phi.Abstract(a)*phi.N()+phi.Abstract(b)]
}

// Interned returns the canonical Mode value for an id — the same mode
// ModeForValues would construct for the matching values, without
// constructing it.
func (c *ModeCache) Interned(id ModeID) Mode { return c.t.modes[id] }

// ModeFor is the drop-in interned replacement for ModeForValues: it
// returns the identical Mode for the set and environment, taken from
// the table instead of built afresh. Unlike the hot-path selectors it
// still walks the environment map; it exists for callers migrating off
// ModeForValues and for tests asserting the interning is faithful.
func (c *ModeCache) ModeFor(set SymSet, env map[string]Value) Mode {
	return c.t.modes[c.t.Set(set).ModeEnv(env)]
}

// Mode1 is the fixed-arity direct selector for one-variable sets: like
// Binder1 without the closure, so call sites that already know the
// set's shape pay neither a variadic []Value allocation nor an indirect
// call. Constant sets are accepted (the value is ignored).
func (r SetRef) Mode1(v Value) ModeID {
	e := &r.t.sets[r.idx]
	switch len(e.vars) {
	case 0:
		return e.modes[0]
	case 1:
		return e.modes[r.t.phi.Abstract(v)]
	}
	panic(fmt.Sprintf("core: SetRef.Mode1: set %s has variables %v", e.set, e.vars))
}

// Mode2 is the fixed-arity direct selector for two-variable sets, with
// values in the set's canonical Vars() order (check Vars() once at
// setup — Binder2 does the same permutation check behind a closure).
// Constant sets are accepted (the values are ignored).
func (r SetRef) Mode2(a, b Value) ModeID {
	e := &r.t.sets[r.idx]
	switch len(e.vars) {
	case 0:
		return e.modes[0]
	case 2:
		phi := r.t.phi
		return e.modes[phi.Abstract(a)*phi.N()+phi.Abstract(b)]
	}
	panic(fmt.Sprintf("core: SetRef.Mode2: set %s has variables %v", e.set, e.vars))
}

// modeMemoSize bounds the Txn mode-selection memo. Sections lock a
// handful of symbolic sets; eight entries cover every set of the
// largest synthesized sections with room for pooled-transaction reuse
// across different sections.
const modeMemoSize = 8

// modeMemo is one memoized mode selection: the set identity (table
// pointer + dense set index), the values it was selected for, and the
// result. All fields are immutable table state or values, so a memo
// entry can never go stale.
type modeMemo struct {
	t     *ModeTable
	set   int
	nvals int8
	v0    Value
	v1    Value
	mode  ModeID
}

// CachedMode1 selects the mode of a one-variable set through the
// transaction's memo: when the same (set, value) was selected before —
// in this section or a previous one run on the pooled transaction —
// the ModeID returns without re-hashing the value through φ, without
// allocating, and without an indirect call. Values must be comparable
// (they already must be to serve as φ assignments and ADT keys).
func (t *Txn) CachedMode1(r SetRef, v Value) ModeID {
	memo := t.memo[:modeMemoLimit.Load()]
	for i := range memo {
		m := &memo[i]
		if m.t == r.t && m.set == r.idx && m.nvals == 1 && m.v0 == v {
			return m.mode
		}
	}
	id := r.Mode1(v)
	t.memoStore(modeMemo{t: r.t, set: r.idx, nvals: 1, v0: v, mode: id})
	return id
}

// CachedMode2 is CachedMode1 for two-variable sets; values follow the
// set's canonical Vars() order, exactly as in SetRef.Mode2.
func (t *Txn) CachedMode2(r SetRef, a, b Value) ModeID {
	memo := t.memo[:modeMemoLimit.Load()]
	for i := range memo {
		m := &memo[i]
		if m.t == r.t && m.set == r.idx && m.nvals == 2 && m.v0 == a && m.v1 == b {
			return m.mode
		}
	}
	id := r.Mode2(a, b)
	t.memoStore(modeMemo{t: r.t, set: r.idx, nvals: 2, v0: a, v1: b, mode: id})
	return id
}

// memoStore inserts an entry round-robin within the tunable effective
// size (SetModeMemoLimit). Eviction order barely matters: the memo
// exists for the tight re-lock loops of one section, where the working
// set is far below the limit. A shrink can leave memoNext past the new
// limit; the wrap check catches that and entries beyond the limit are
// never read (CachedMode1/2 scan memo[:limit]) until a grow makes them
// eligible again — they hold older but never-wrong selections.
func (t *Txn) memoStore(m modeMemo) {
	lim := uint8(modeMemoLimit.Load())
	if t.memoNext >= lim {
		t.memoNext = 0
	}
	t.memo[t.memoNext] = m
	t.memoNext++
	if t.memoNext >= lim {
		t.memoNext = 0
	}
}
