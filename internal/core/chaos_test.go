package core

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// Fault-tolerance tests for the transaction runtime: bounded
// acquisition, timed-out waiter teardown, and panic-safe sections. All
// are named TestChaos* so CI's chaos job (-run Chaos) selects them.

// TestChaosStallErrorNamesHolders: a timed-out acquisition must produce
// a *StallError naming at least one holder slot with its mode, and a
// timed-out LockWithin must leave the transaction untouched while
// attaching its acquisition log to the error.
func TestChaosStallErrorNamesHolders(t *testing.T) {
	for _, v1 := range []bool{false, true} {
		name := "v2"
		if v1 {
			name = "v1"
		}
		t.Run(name, func(t *testing.T) {
			tbl := mapTable(t, 1, TableOptions{})
			s := NewSemantic(tbl)
			s.DisableMechV2 = v1
			km := keyMode(tbl, 7)
			s.Acquire(km)

			err := s.AcquireWithin(km, 20*time.Millisecond)
			var stall *StallError
			if !errors.As(err, &stall) {
				t.Fatalf("want *StallError, got %v", err)
			}
			if len(stall.Holders) == 0 {
				t.Fatal("stall error names no holder slot")
			}
			for _, h := range stall.Holders {
				if h.Mode == "" || h.Count < 1 {
					t.Errorf("anonymous holder slot: %+v", h)
				}
			}
			if stall.Waited < 20*time.Millisecond {
				t.Errorf("Waited = %v, below patience", stall.Waited)
			}
			if stall.Instance != s.ID() {
				t.Errorf("Instance = %d, want %d", stall.Instance, s.ID())
			}

			// LockWithin on a checked transaction: the error carries the
			// log of what the blocked transaction already held, and the
			// failed acquisition records nothing.
			other := NewSemantic(tbl)
			other.DisableMechV2 = v1
			tx := NewCheckedTxn()
			tx.Lock(other, keyMode(tbl, 1), 0)
			err = tx.LockWithin(s, km, 1, 10*time.Millisecond)
			if !errors.As(err, &stall) {
				t.Fatalf("LockWithin: want *StallError, got %v", err)
			}
			if len(stall.Log) != 1 || stall.Log[0].ID != other.ID() {
				t.Errorf("stall log = %+v, want the held acquisition", stall.Log)
			}
			if tx.HeldCount() != 1 {
				t.Errorf("timed-out LockWithin recorded a hold: %d", tx.HeldCount())
			}
			tx.UnlockAll()

			// After release the bounded path must succeed.
			s.Release(km)
			if err := s.AcquireWithin(km, 5*time.Second); err != nil {
				t.Fatalf("post-release AcquireWithin: %v", err)
			}
			s.Release(km)
			if err := s.CheckQuiesced(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestChaosTimeoutNoStrandedToken: a bounded waiter that times out
// tears its registration down without stranding the wake machinery —
// an unbounded waiter on the same slot must still be woken by the next
// release.
func TestChaosTimeoutNoStrandedToken(t *testing.T) {
	tbl := mapTable(t, 1, TableOptions{})
	s := NewSemantic(tbl)
	km := keyMode(tbl, 3)
	s.Acquire(km)

	w1done := make(chan error, 1)
	go func() { w1done <- s.AcquireWithin(km, 40*time.Millisecond) }()
	w2done := make(chan struct{})
	go func() { s.Acquire(km); close(w2done) }()

	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Waits < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never blocked: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// Let the bounded waiter time out and deregister, then release: the
	// unbounded waiter must acquire.
	err := <-w1done
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("bounded waiter: want *StallError, got %v", err)
	}
	s.Release(km)
	select {
	case <-w2done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter stranded after bounded peer timed out")
	}
	s.Release(km)
	if err := s.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
	if n := WaitersOutstanding(); n != 0 {
		t.Fatalf("waiter free-list leaked: %d outstanding", n)
	}
}

// TestChaosTimeoutReleaseRace hammers the race the re-donation exists
// for: a release and a waiter timeout landing together. Whatever
// interleaving occurs, the round must end with no registered waiter, no
// leaked claim, and no stranded goroutine. Run under -race.
func TestChaosTimeoutReleaseRace(t *testing.T) {
	for _, v1 := range []bool{false, true} {
		name := "v2"
		if v1 {
			name = "v1"
		}
		t.Run(name, func(t *testing.T) {
			tbl := mapTable(t, 1, TableOptions{})
			s := NewSemantic(tbl)
			s.DisableMechV2 = v1
			km := keyMode(tbl, 1)
			rounds := 300
			if testing.Short() {
				rounds = 50
			}
			for r := 0; r < rounds; r++ {
				s.Acquire(km)
				var wg sync.WaitGroup
				for w := 0; w < 3; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						patience := time.Duration(200+(r*7+w*131)%1800) * time.Microsecond
						if err := s.AcquireWithin(km, patience); err == nil {
							s.Release(km)
						}
					}(w)
				}
				// Release at a phase that sweeps across the waiters'
				// deadlines as rounds advance.
				time.Sleep(time.Duration((r*13)%2000) * time.Microsecond)
				s.Release(km)
				wg.Wait()
				if err := s.CheckQuiesced(); err != nil {
					t.Fatalf("round %d: %v", r, err)
				}
			}
			if n := WaitersOutstanding(); n != 0 {
				t.Fatalf("waiter free-list leaked: %d outstanding", n)
			}
		})
	}
}

// TestChaosAtomicallyPanicReleasesLocks: a panic inside an atomic
// section releases every held lock before unwinding as *SectionPanic,
// and Txn.Abort releases and returns normally.
func TestChaosAtomicallyPanicReleasesLocks(t *testing.T) {
	tbl := mapTable(t, 1, TableOptions{})
	s := NewSemantic(tbl)
	km := keyMode(tbl, 2)

	func() {
		defer func() {
			sp, ok := recover().(*SectionPanic)
			if !ok {
				t.Fatal("expected *SectionPanic")
			}
			if sp.HeldAtPanic != 1 {
				t.Errorf("HeldAtPanic = %d, want 1", sp.HeldAtPanic)
			}
			if sp.Value != "boom" {
				t.Errorf("Value = %v, want boom", sp.Value)
			}
		}()
		Atomically(func(tx *Txn) {
			tx.Lock(s, km, 0)
			panic("boom")
		})
	}()
	if !s.TryAcquire(km) {
		t.Fatal("lock leaked by panicking section")
	}
	s.Release(km)

	// Abort: locks released, control returns normally after Atomically.
	reached := false
	Atomically(func(tx *Txn) {
		tx.Lock(s, km, 0)
		reached = true
		tx.Abort()
		t.Error("statement after Abort executed")
	})
	if !reached {
		t.Fatal("section body did not run")
	}
	if !s.TryAcquire(km) {
		t.Fatal("lock leaked by aborted section")
	}
	s.Release(km)

	// SectionPanic carries the checked acquisition log.
	tx := NewCheckedTxn()
	func() {
		defer func() {
			sp, ok := recover().(*SectionPanic)
			if !ok {
				t.Fatal("expected *SectionPanic")
			}
			if len(sp.Log) != 1 || sp.Log[0].ID != s.ID() {
				t.Errorf("Log = %+v, want the held acquisition", sp.Log)
			}
		}()
		tx.Atomically(func(tx *Txn) {
			tx.Lock(s, km, 0)
			panic("boom")
		})
	}()

	if err := s.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosResetShrinksBackingArrays: a pathologically lock-heavy
// transaction must not pin its high-water held/log arrays through the
// pool; small transactions keep their backing arrays.
func TestChaosResetShrinksBackingArrays(t *testing.T) {
	tbl := mapTable(t, 1, TableOptions{})
	km := keyMode(tbl, 0)

	tx := NewCheckedTxn()
	for i := 0; i < 4*resetShrinkCap; i++ {
		tx.Lock(NewSemantic(tbl), km, i)
	}
	tx.UnlockAll()
	tx.Reset()
	if cap(tx.held) > resetShrinkCap {
		t.Errorf("held cap %d not shrunk (threshold %d)", cap(tx.held), resetShrinkCap)
	}
	if cap(tx.log) > resetShrinkCap {
		t.Errorf("log cap %d not shrunk (threshold %d)", cap(tx.log), resetShrinkCap)
	}

	// A modest transaction keeps its arrays across Reset.
	for i := 0; i < 4; i++ {
		tx.Lock(NewSemantic(tbl), km, i)
	}
	tx.UnlockAll()
	before := cap(tx.held)
	tx.Reset()
	if cap(tx.held) != before {
		t.Errorf("small held backing array dropped: %d -> %d", before, cap(tx.held))
	}
}
