package core

import "fmt"

// This file extends the commutativity-condition algebra with ORDERED
// predicates (a < b), enabling semantic locks over range operations —
// e.g. an ordered map where rangeCount(lo,hi) commutes with put(k,v)
// whenever k < lo or k > hi. The paper's conditions (Fig 3b) only need
// (dis)equality; ordered ADTs are the natural next ADT family and this
// is the corresponding extension of §5's mode machinery.
//
// Symbolic reasoning about order requires φ's buckets to be ordered:
// IntervalPhi partitions an integer key domain into consecutive
// intervals, so bucket indices compare like the values they contain.

// OrderedPhi is a φ whose buckets are intervals of an integer domain:
// Bounds returns the inclusive value range covered by a bucket. The
// ordered conditions below only reason symbolically over φs that
// implement this interface; under any other φ they are simply never
// "definitely" true (sound, just conservative).
type OrderedPhi interface {
	Phi
	// Bounds returns the inclusive [lo, hi] range of bucket b.
	Bounds(b int) (lo, hi int64)
}

// IntervalPhi partitions [0, Max) into n equal consecutive intervals.
// Values below 0 clamp into bucket 0 and values ≥ Max into bucket n-1,
// keeping Abstract total. Non-integer values hash into buckets like
// HashPhi, but then carry no order information.
type IntervalPhi struct {
	n   int
	max int64
}

// NewIntervalPhi creates an interval-partitioned φ over [0, max).
func NewIntervalPhi(n int, max int64) *IntervalPhi {
	if n <= 0 || max < int64(n) {
		panic(fmt.Sprintf("core: NewIntervalPhi(%d, %d): need n > 0 and max ≥ n", n, max))
	}
	return &IntervalPhi{n: n, max: max}
}

// N returns the bucket count.
func (p *IntervalPhi) N() int { return p.n }

// Abstract maps integer values by interval and everything else by hash.
func (p *IntervalPhi) Abstract(v Value) int {
	k, ok := asInt64(v)
	if !ok {
		return int(hashValue(v) % uint64(p.n))
	}
	if k < 0 {
		return 0
	}
	if k >= p.max {
		return p.n - 1
	}
	return int(k * int64(p.n) / p.max)
}

// Bounds returns the inclusive value range of bucket b.
func (p *IntervalPhi) Bounds(b int) (int64, int64) {
	lo := int64(b) * p.max / int64(p.n)
	hi := int64(b+1)*p.max/int64(p.n) - 1
	if b == 0 {
		lo = minInt64
	}
	if b == p.n-1 {
		hi = maxInt64
	}
	return lo, hi
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

func asInt64(v Value) (int64, bool) {
	switch x := v.(type) {
	case int:
		return int64(x), true
	case int8:
		return int64(x), true
	case int16:
		return int64(x), true
	case int32:
		return int64(x), true
	case int64:
		return x, true
	case uint8:
		return int64(x), true
	case uint16:
		return int64(x), true
	case uint32:
		return int64(x), true
	}
	return 0, false
}

// valueRange returns the inclusive integer range a mode argument can
// denote under φ, and whether that range is known.
func valueRange(a ModeArg, phi Phi) (lo, hi int64, ok bool) {
	switch a.Kind {
	case ModeConst:
		v, isInt := asInt64(a.Val)
		if !isInt {
			return 0, 0, false
		}
		return v, v, true
	case ModeAbs:
		op, isOrdered := phi.(OrderedPhi)
		if !isOrdered {
			return 0, 0, false
		}
		lo, hi = op.Bounds(a.Abs)
		return lo, hi, true
	default: // Star
		return 0, 0, false
	}
}

// condLT is the ordered condition: argument I of the first operation is
// strictly less than argument J of the second.
type condLT struct{ i, j int }

// ArgsLT returns the condition "arg i of the first op < arg j of the
// second op". Non-integer arguments never satisfy it.
func ArgsLT(i, j int) Cond { return condLT{i, j} }

// ArgsGT returns the condition "arg i of the first op > arg j of the
// second op".
func ArgsGT(i, j int) Cond { return condLT{j, i}.swappedView() }

func (c condLT) Holds(a, b []Value) bool {
	x, okX := asInt64(a[c.i])
	y, okY := asInt64(b[c.j])
	return okX && okY && x < y
}

func (c condLT) Definitely(a, b []ModeArg, phi Phi) bool {
	_, hiX, okX := valueRange(a[c.i], phi)
	loY, _, okY := valueRange(b[c.j], phi)
	return okX && okY && hiX < loY
}

func (c condLT) Swapped() Cond  { return c.swappedView() }
func (c condLT) String() string { return fmt.Sprintf("a%d<b%d", c.i, c.j) }

// condGTView is condLT with operand roles exchanged: first[i] > second[j].
type condGTView struct{ i, j int }

func (c condLT) swappedView() Cond { return condGTView{c.j, c.i} }

func (c condGTView) Holds(a, b []Value) bool {
	x, okX := asInt64(a[c.i])
	y, okY := asInt64(b[c.j])
	return okX && okY && x > y
}

func (c condGTView) Definitely(a, b []ModeArg, phi Phi) bool {
	loX, _, okX := valueRange(a[c.i], phi)
	_, hiY, okY := valueRange(b[c.j], phi)
	return okX && okY && loX > hiY
}

func (c condGTView) Swapped() Cond  { return condLT{c.j, c.i} }
func (c condGTView) String() string { return fmt.Sprintf("a%d>b%d", c.i, c.j) }
