package core

import (
	"testing"
	"time"
)

// TestStatsFastPath: uncontended acquisitions take the fast path.
func TestStatsFastPath(t *testing.T) {
	tbl := mapTable(t, 4, TableOptions{})
	s := NewSemantic(tbl)
	for i := 0; i < 100; i++ {
		m := keyMode(tbl, i)
		s.Acquire(m)
		s.Release(m)
	}
	st := s.Stats()
	if st.FastPath != 100 || st.Slow != 0 || st.Waits != 0 {
		t.Errorf("stats = %+v, want 100 fast-path acquisitions", st)
	}
}

// TestStatsBlocked: a conflicting acquisition registers a slow-path
// wait.
func TestStatsBlocked(t *testing.T) {
	tbl := mapTable(t, 1, TableOptions{})
	s := NewSemantic(tbl)
	km, sm := keyMode(tbl, 1), sizeMode(tbl)
	s.Acquire(km)
	acquired := make(chan struct{})
	go func() {
		s.Acquire(sm)
		close(acquired)
	}()
	time.Sleep(30 * time.Millisecond)
	s.Release(km)
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked acquire never completed")
	}
	st := s.Stats()
	if st.Slow == 0 || st.Waits == 0 {
		t.Errorf("stats = %+v, want slow-path waits recorded", st)
	}
	s.Release(sm)
}

// TestStatsNoFastPath: with the fast path disabled (A4) every
// acquisition is slow-path.
func TestStatsNoFastPath(t *testing.T) {
	tbl := mapTable(t, 4, TableOptions{})
	s := NewSemantic(tbl)
	s.DisableFastPath = true
	for i := 0; i < 50; i++ {
		m := keyMode(tbl, i)
		s.Acquire(m)
		s.Release(m)
	}
	st := s.Stats()
	if st.FastPath != 0 || st.Slow != 50 {
		t.Errorf("stats = %+v, want 50 slow-path acquisitions", st)
	}
}
