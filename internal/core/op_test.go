package core

import "testing"

func TestOpString(t *testing.T) {
	if got := NewOp("add", 7).String(); got != "add(7)" {
		t.Errorf("add(7) rendered as %q", got)
	}
	if got := NewOp("size").String(); got != "size()" {
		t.Errorf("size() rendered as %q", got)
	}
	if got := NewOp("put", 1, "x").String(); got != "put(1,x)" {
		t.Errorf("put rendered as %q", got)
	}
}

func TestSymOpString(t *testing.T) {
	op := SymOpOf("put", VarArg("id"), Star())
	if got := op.String(); got != "put(id,*)" {
		t.Errorf("put(id,*) rendered as %q", got)
	}
	op = SymOpOf("add", ConstArg(5))
	if got := op.String(); got != "add(5)" {
		t.Errorf("add(5) rendered as %q", got)
	}
}

func TestSymSetNormalization(t *testing.T) {
	a := SymSetOf(SymOpOf("remove", VarArg("id")), SymOpOf("get", VarArg("id")))
	b := SymSetOf(SymOpOf("get", VarArg("id")), SymOpOf("remove", VarArg("id")))
	if !a.Equal(b) {
		t.Errorf("sets with same ops in different order not equal: %s vs %s", a, b)
	}
	if a.Key() != "{get(id),remove(id)}" {
		t.Errorf("unexpected key %q", a.Key())
	}
}

func TestSymSetVars(t *testing.T) {
	s := SymSetOf(
		SymOpOf("get", VarArg("id")),
		SymOpOf("put", VarArg("id"), Star()),
		SymOpOf("add", VarArg("x")),
	)
	vars := s.Vars()
	if len(vars) != 2 || vars[0] != "id" || vars[1] != "x" {
		t.Errorf("Vars = %v, want [id x]", vars)
	}
	if s.IsConstant() {
		t.Error("set with variables reported constant")
	}
	c := SymSetOf(SymOpOf("add", Star()), SymOpOf("remove", ConstArg(3)))
	if !c.IsConstant() {
		t.Error("constant set not reported constant")
	}
}

func TestSymSetUnion(t *testing.T) {
	a := SymSetOf(SymOpOf("get", VarArg("id")))
	b := SymSetOf(SymOpOf("get", VarArg("id")), SymOpOf("remove", VarArg("id")))
	u := a.Union(b)
	if len(u) != 2 {
		t.Fatalf("union has %d ops, want 2", len(u))
	}
	if !u.Equal(b) {
		t.Errorf("union = %s, want %s", u, b)
	}
}

// TestSymSetCovers exercises the denotation [SY](σ) of §2.2.1 with the
// paper's Example 2.2: when id = 7, {get(id),put(id,*),remove(id)} locks
// get(7), remove(7) and every put(7,v).
func TestSymSetCovers(t *testing.T) {
	set := SymSetOf(
		SymOpOf("get", VarArg("id")),
		SymOpOf("put", VarArg("id"), Star()),
		SymOpOf("remove", VarArg("id")),
	)
	env := map[string]Value{"id": 7}
	for _, op := range []Op{NewOp("get", 7), NewOp("remove", 7), NewOp("put", 7, "anything"), NewOp("put", 7, 12345)} {
		if !set.Covers(op, env) {
			t.Errorf("%s should be covered when id=7", op)
		}
	}
	for _, op := range []Op{NewOp("get", 8), NewOp("put", 8, "v"), NewOp("size")} {
		if set.Covers(op, env) {
			t.Errorf("%s should NOT be covered when id=7", op)
		}
	}
}

func TestSymSetCoversStarOnly(t *testing.T) {
	// Example 2.2 second half: lock({add(*)}) locks every add(v).
	set := SymSetOf(SymOpOf("add", Star()))
	for _, v := range []Value{0, 1, "s", 3.5} {
		if !set.Covers(NewOp("add", v), nil) {
			t.Errorf("add(%v) should be covered by {add(*)}", v)
		}
	}
	if set.Covers(NewOp("remove", 1), nil) {
		t.Error("remove(1) must not be covered by {add(*)}")
	}
}

func TestSymSetCoversConstArg(t *testing.T) {
	set := SymSetOf(SymOpOf("add", ConstArg(5)))
	if !set.Covers(NewOp("add", 5), nil) {
		t.Error("add(5) should be covered by {add(5)}")
	}
	if set.Covers(NewOp("add", 6), nil) {
		t.Error("add(6) must not be covered by {add(5)}")
	}
}

func TestSymSetCoversArityMismatch(t *testing.T) {
	set := SymSetOf(SymOpOf("add", Star()))
	if set.Covers(NewOp("add", 1, 2), nil) {
		t.Error("add/2 must not be covered by add/1 pattern")
	}
}

func TestAllOpsSet(t *testing.T) {
	got := setSpec().AllOpsSet()
	want := SymSetOf(
		SymOpOf("add", Star()),
		SymOpOf("remove", Star()),
		SymOpOf("contains", Star()),
		SymOpOf("size"),
		SymOpOf("clear"),
	)
	if !got.Equal(want) {
		t.Errorf("AllOpsSet = %s, want %s", got, want)
	}
	if !got.IsConstant() {
		t.Error("the generic lock(+) set must be constant")
	}
}
