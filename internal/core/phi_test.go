package core

import (
	"testing"
	"testing/quick"
)

func TestPhiRange(t *testing.T) {
	phi := NewPhi(64)
	if phi.N() != 64 {
		t.Fatalf("N = %d, want 64", phi.N())
	}
	values := []Value{0, 1, -5, int64(7), uint32(9), "hello", 3.14, true, false, struct{ A int }{4}}
	for _, v := range values {
		b := phi.Abstract(v)
		if b < 0 || b >= 64 {
			t.Errorf("Abstract(%v) = %d out of range", v, b)
		}
	}
}

func TestPhiDeterministic(t *testing.T) {
	phi := NewPhi(16)
	for _, v := range []Value{42, "x", 1.5} {
		if phi.Abstract(v) != phi.Abstract(v) {
			t.Errorf("Abstract(%v) not deterministic", v)
		}
	}
}

// TestPhiIntSpread checks that consecutive small integers (the common key
// pattern in the paper's workloads) spread over buckets rather than
// clustering — important for the parallelism the modes admit.
func TestPhiIntSpread(t *testing.T) {
	phi := NewPhi(64)
	counts := make([]int, 64)
	const n = 64 * 64
	for i := 0; i < n; i++ {
		counts[phi.Abstract(i)]++
	}
	for b, c := range counts {
		if c == 0 {
			t.Errorf("bucket %d empty after %d consecutive ints", b, n)
		}
		if c > 4*n/64 {
			t.Errorf("bucket %d badly overloaded: %d of %d", b, c, n)
		}
	}
}

func TestPhiQuickRange(t *testing.T) {
	phi := NewPhi(7)
	f := func(x int64, s string) bool {
		a, b := phi.Abstract(x), phi.Abstract(s)
		return a >= 0 && a < 7 && b >= 0 && b < 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFixedPhi(t *testing.T) {
	phi := NewFixedPhi(2, 1, map[Value]int{5: 0})
	if phi.Abstract(5) != 0 {
		t.Error("assigned value must map to its bucket")
	}
	if phi.Abstract(99) != 1 {
		t.Error("unassigned value must map to default bucket")
	}
	if phi.N() != 2 {
		t.Error("N wrong")
	}
}

func TestNewPhiPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPhi(0) must panic")
		}
	}()
	NewPhi(0)
}

func TestReducedPhi(t *testing.T) {
	base := NewPhi(64)
	r := &reducedPhi{base: base, n: 8}
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	for i := 0; i < 100; i++ {
		if got, want := r.Abstract(i), base.Abstract(i)%8; got != want {
			t.Errorf("reduced bucket of %d = %d, want %d", i, got, want)
		}
	}
}
