package core

import (
	"fmt"
	"hash/fnv"
	"math"
)

// Phi is the hash function φ : Value → {α_1, ..., α_n} of §5.1 that maps
// runtime values to n abstract values. Abstract values are represented as
// integers in [0, n). φ partitions the value domain: each abstract value
// α_i represents the disjoint bucket {v | φ(v) = α_i}.
type Phi interface {
	// N returns the number of abstract values n.
	N() int
	// Abstract returns φ(v) ∈ [0, N()).
	Abstract(v Value) int
}

// HashPhi is the default φ: an FNV-1a hash of the value's canonical bytes
// reduced modulo n. The paper's evaluation uses n = 64 (§5.3).
type HashPhi struct {
	n int
}

// NewPhi returns a HashPhi with n abstract values. n must be positive.
func NewPhi(n int) *HashPhi {
	if n <= 0 {
		panic(fmt.Sprintf("core: NewPhi(%d): n must be positive", n))
	}
	return &HashPhi{n: n}
}

// DefaultAbstractValues is the φ range used throughout the paper's
// evaluation (§5.3).
const DefaultAbstractValues = 64

// N returns the number of abstract values.
func (p *HashPhi) N() int { return p.n }

// Abstract maps v to its abstract value. Common scalar types take a fast
// path; everything else is hashed through its fmt representation.
func (p *HashPhi) Abstract(v Value) int {
	return int(hashValue(v) % uint64(p.n))
}

// HashOf returns the 64-bit hash of a value that HashPhi buckets by.
// It is exported so that containers (internal/adt) can stripe their
// internal state consistently with φ.
func HashOf(v Value) uint64 { return hashValue(v) }

func hashValue(v Value) uint64 {
	switch x := v.(type) {
	case int:
		return mix(uint64(x))
	case int8:
		return mix(uint64(x))
	case int16:
		return mix(uint64(x))
	case int32:
		return mix(uint64(x))
	case int64:
		return mix(uint64(x))
	case uint:
		return mix(uint64(x))
	case uint8:
		return mix(uint64(x))
	case uint16:
		return mix(uint64(x))
	case uint32:
		return mix(uint64(x))
	case uint64:
		return mix(x)
	case uintptr:
		return mix(uint64(x))
	case bool:
		if x {
			return mix(1)
		}
		return mix(0)
	case float64:
		return mix(math.Float64bits(x))
	case float32:
		return mix(uint64(math.Float32bits(x)))
	case string:
		h := fnv.New64a()
		h.Write([]byte(x))
		return h.Sum64()
	default:
		h := fnv.New64a()
		fmt.Fprintf(h, "%T:%v", v, v)
		return h.Sum64()
	}
}

// mix is a 64-bit finalizer (splitmix64) so that small consecutive
// integers spread across buckets instead of clustering.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// FixedPhi is a φ for tests: explicit assignments with a default bucket.
// It makes examples like Fig 19 ("φ(5) = α1") directly expressible.
type FixedPhi struct {
	n       int
	assign  map[Value]int
	defaultTo int
}

// NewFixedPhi builds a FixedPhi with n abstract values; unassigned values
// map to bucket def.
func NewFixedPhi(n, def int, assign map[Value]int) *FixedPhi {
	if n <= 0 || def < 0 || def >= n {
		panic("core: NewFixedPhi: invalid parameters")
	}
	for v, b := range assign {
		if b < 0 || b >= n {
			panic(fmt.Sprintf("core: NewFixedPhi: bucket %d for %v out of range", b, v))
		}
	}
	return &FixedPhi{n: n, assign: assign, defaultTo: def}
}

// N returns the number of abstract values.
func (p *FixedPhi) N() int { return p.n }

// Abstract returns the assigned bucket, or the default bucket.
func (p *FixedPhi) Abstract(v Value) int {
	if b, ok := p.assign[v]; ok {
		return b
	}
	return p.defaultTo
}
