package core

import (
	"testing"
	"time"
)

func txnFixture(t *testing.T) (*ModeTable, ModeID, ModeID) {
	t.Helper()
	tbl := mapTable(t, 1, TableOptions{})
	return tbl, keyMode(tbl, 7), sizeMode(tbl)
}

// TestTxnLocalSet: locking the same instance twice is a no-op (the
// LOCAL_SET behaviour of the LV macro, Fig 5).
func TestTxnLocalSet(t *testing.T) {
	tbl, km, _ := txnFixture(t)
	s := NewSemantic(tbl)
	tx := NewTxn()
	tx.Lock(s, km, 0)
	tx.Lock(s, km, 0) // LV has no impact when already locked
	if got := tx.HeldCount(); got != 1 {
		t.Errorf("held = %d, want 1", got)
	}
	if got := s.Holders(km); got != 1 {
		t.Errorf("holders = %d, want 1 (double-lock must be absorbed)", got)
	}
	tx.UnlockAll()
	if s.Holders(km) != 0 {
		t.Error("UnlockAll left a holder")
	}
}

func TestTxnLockNil(t *testing.T) {
	tx := NewTxn()
	tx.Lock(nil, 0, 0) // Fig 5: no impact when x is null
	if tx.HeldCount() != 0 {
		t.Error("nil lock must be a no-op")
	}
	tx.UnlockAll()
}

// TestTxnTwoPhase: locking after any unlock violates S2PL and panics.
func TestTxnTwoPhase(t *testing.T) {
	tbl, km, _ := txnFixture(t)
	s1, s2 := NewSemantic(tbl), NewSemantic(tbl)
	tx := NewTxn()
	tx.Lock(s1, km, 0)
	tx.UnlockInstance(s1)
	defer func() {
		if recover() == nil {
			t.Error("lock after unlock must panic")
		}
	}()
	tx.Lock(s2, km, 0)
}

// TestTxnOrderingChecked: a checked transaction panics when instances
// are locked against the static rank order or against the unique-id
// order within a rank (OS2PL, §3.3).
func TestTxnOrderingChecked(t *testing.T) {
	tbl, km, _ := txnFixture(t)
	lo, hi := NewSemantic(tbl), NewSemantic(tbl) // lo.id < hi.id

	t.Run("rank order violation", func(t *testing.T) {
		tx := NewCheckedTxn()
		tx.Lock(hi, km, 1)
		defer func() {
			tx.UnlockAll()
			if recover() == nil {
				t.Error("locking rank 0 after rank 1 must panic")
			}
		}()
		tx.Lock(lo, km, 0)
	})

	t.Run("id order violation within rank", func(t *testing.T) {
		tx := NewCheckedTxn()
		tx.Lock(hi, km, 0)
		defer func() {
			tx.UnlockAll()
			if recover() == nil {
				t.Error("locking smaller id after larger id in same rank must panic")
			}
		}()
		tx.Lock(lo, km, 0)
	})

	t.Run("correct order passes", func(t *testing.T) {
		tx := NewCheckedTxn()
		tx.Lock(lo, km, 0)
		tx.Lock(hi, km, 0)
		tx.UnlockAll()
	})
}

// TestLockOrdered: LV2 (Fig 12) sorts same-class instances by unique id
// regardless of argument order, so two concurrent transactions cannot
// deadlock on a pair of instances.
func TestLockOrdered(t *testing.T) {
	tbl, km, _ := txnFixture(t)
	a, b := NewSemantic(tbl), NewSemantic(tbl)

	tx := NewCheckedTxn()
	tx.LockOrdered(0, km, b, a) // reversed order is fine: sorted internally
	if tx.HeldCount() != 2 {
		t.Fatalf("held = %d, want 2", tx.HeldCount())
	}
	tx.UnlockAll()

	tx2 := NewCheckedTxn()
	tx2.LockOrdered(0, km, b, nil, a, b) // nils and duplicates absorbed
	if tx2.HeldCount() != 2 {
		t.Fatalf("held = %d, want 2 with nil/dup", tx2.HeldCount())
	}
	tx2.UnlockAll()
}

// TestLockOrderedNoDeadlock runs two transactions locking the same pair
// in opposite argument order under a conflicting mode; with LV2 ordering
// they must always complete.
func TestLockOrderedNoDeadlock(t *testing.T) {
	tbl, km, _ := txnFixture(t)
	a, b := NewSemantic(tbl), NewSemantic(tbl)
	done := make(chan struct{}, 2)
	run := func(first, second *Semantic) {
		for i := 0; i < 500; i++ {
			tx := NewTxn()
			tx.LockOrdered(0, km, first, second)
			tx.UnlockAll()
		}
		done <- struct{}{}
	}
	go run(a, b)
	go run(b, a)
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("deadlock: ordered locking did not complete")
		}
	}
}

// TestTxnEarlyRelease: UnlockInstance releases one instance early
// (Appendix A) and bars further locking.
func TestTxnEarlyRelease(t *testing.T) {
	tbl, km, _ := txnFixture(t)
	s1, s2 := NewSemantic(tbl), NewSemantic(tbl)
	tx := NewTxn()
	tx.Lock(s1, km, 0)
	tx.Lock(s2, km, 0)
	tx.UnlockInstance(s1)
	if s1.Holders(km) != 0 {
		t.Error("early release did not release s1")
	}
	if s2.Holders(km) != 1 {
		t.Error("early release must not touch s2")
	}
	tx.UnlockInstance(nil) // no-op
	tx.UnlockAll()
	if s2.Holders(km) != 0 {
		t.Error("epilogue did not release s2")
	}
}

func TestTxnReset(t *testing.T) {
	tbl, km, _ := txnFixture(t)
	s := NewSemantic(tbl)
	tx := NewTxn()
	tx.Lock(s, km, 0)
	tx.UnlockAll()
	tx.Reset()
	tx.Lock(s, km, 0) // reusable after Reset
	tx.UnlockAll()
}

func TestTxnResetWhileHeldPanics(t *testing.T) {
	tbl, km, _ := txnFixture(t)
	s := NewSemantic(tbl)
	tx := NewTxn()
	tx.Lock(s, km, 0)
	defer func() {
		tx.UnlockAll()
		if recover() == nil {
			t.Error("Reset with held locks must panic")
		}
	}()
	tx.Reset()
}

// TestTxnAssert: the checked S2PL rule — operations must be covered by a
// held mode.
func TestTxnAssert(t *testing.T) {
	tbl, km, _ := txnFixture(t)
	s := NewSemantic(tbl)
	tx := NewCheckedTxn()
	tx.Lock(s, km, 0)
	// n=1, so the key mode covers get/put/remove on every key.
	tx.Assert(s, NewOp("get", 7))
	tx.Assert(s, NewOp("put", 123, "v"))

	t.Run("uncovered op panics", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("size() not covered by key mode: Assert must panic")
			}
		}()
		tx.Assert(s, NewOp("size"))
	})

	t.Run("unlocked instance panics", func(t *testing.T) {
		other := NewSemantic(tbl)
		defer func() {
			if recover() == nil {
				t.Error("op on unlocked instance must panic")
			}
		}()
		tx.Assert(other, NewOp("get", 7))
	})

	tx.UnlockAll()

	unchecked := NewTxn()
	unchecked.Assert(s, NewOp("size")) // no-op without checking
	if unchecked.Checked() {
		t.Error("NewTxn must not be checked")
	}
	if !tx.Checked() {
		t.Error("NewCheckedTxn must be checked")
	}
}

// TestTxnHolds exercises the LOCAL_SET membership query.
func TestTxnHolds(t *testing.T) {
	tbl, km, _ := txnFixture(t)
	s := NewSemantic(tbl)
	tx := NewTxn()
	if tx.Holds(s) {
		t.Error("fresh txn holds nothing")
	}
	tx.Lock(s, km, 0)
	if !tx.Holds(s) {
		t.Error("txn must report held instance")
	}
	tx.UnlockAll()
	if tx.Holds(s) {
		t.Error("txn must not report after UnlockAll")
	}
}
