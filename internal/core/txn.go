package core

import (
	"fmt"
	"sort"
	"time"
)

// Txn is a transaction: the execution of an atomic section (§2.1). It
// tracks the ADT instances it has locked (the paper's LOCAL_SET, §3.1),
// enforces the two-phase rule of S2PL (§2.3: no lock after any unlock),
// and — when checking is enabled — asserts the OS2PL ordering rule and
// that every standard operation is covered by a held mode.
//
// A Txn is used by one goroutine at a time and may be Reset and reused.
type Txn struct {
	held       []heldLock
	heldIdx    map[*Semantic]struct{} // membership index; built past holdsIndexThreshold
	unlockedAt int                    // count of releases performed; >0 bars further locking
	checked    bool

	// order-tracking for the checked OS2PL assertion
	lastRank int
	lastID   uint64
	haveLast bool

	// acquisition log, recorded by checked transactions so harnesses can
	// cross-check the runtime order against the static verifier.
	log []Acquisition

	// batchModes is LockBatch's scratch for same-instance mode groups;
	// it is reused across calls so fused prologues allocate nothing.
	batchModes []ModeID

	// memo is the allocation-free mode-selection scratch (CachedMode1/
	// CachedMode2): the most recent selections per symbolic set, keyed
	// by value equality, so a section that re-locks the same abstract
	// values never re-hashes them through φ. The entries are keyed on
	// immutable table state and survive Reset deliberately — pooled
	// transactions serving the same sections hit the memo across
	// section executions.
	memo     [modeMemoSize]modeMemo
	memoNext uint8

	// optSnaps is the optimistic snapshot buffer (TryOptimistic): one
	// entry per instance the section would have locked, holding the
	// version sampled at observation. Reset clears it — a pooled
	// transaction must never validate against a stale version vector —
	// and TryOptimistic additionally truncates it on entry as defense in
	// depth. optActive marks execution inside an optimistic body, where
	// Observe records instead of acquiring and Assert accepts coverage
	// by observed modes.
	optSnaps  []optSnap
	optActive bool

	// trace is the telemetry acquisition ring (StartTrace): a bounded
	// buffer of Acquisition events recorded by recordHeld, the same
	// machinery that feeds the checked log, but available on unchecked
	// transactions and switchable per transaction. Unlike the checked
	// log it never grows past its capacity — old events are overwritten
	// so a long section costs a fixed amount of memory to trace.
	trace      []Acquisition
	traceHead  int
	traceTotal int
	traceOn    bool
}

// Acquisition is one recorded lock acquisition of a checked transaction:
// the instance's class rank, its unique id, and the mode taken.
type Acquisition struct {
	Rank int
	ID   uint64
	Mode ModeID
}

type heldLock struct {
	sem  *Semantic
	mode ModeID
	rank int
}

// optSnap is one optimistic observation: the instance and mode the
// section would have locked, plus the mechanism version sampled when
// the observation was made. rank is recorded for diagnostics only —
// observation acquires nothing, so the OS2PL order does not constrain
// it.
type optSnap struct {
	sem  *Semantic
	mode ModeID
	rank int
	ver  uint64
}

// NewTxn begins a transaction (the prologue of §3.1: LOCAL_SET := ∅).
func NewTxn() *Txn { return &Txn{} }

// NewCheckedTxn begins a transaction with protocol checking: violations
// of S2PL, OS2PL ordering, or operation coverage panic with a diagnostic.
// Used by tests and race harnesses.
func NewCheckedTxn() *Txn { return &Txn{checked: true} }

// resetShrinkCap is the backing-array capacity past which Reset drops
// the held/log arrays instead of truncating them. Pooled transactions
// otherwise pin their high-water memory forever: one pathologically
// lock-heavy section would leave every reuse carrying its peak backing
// array. 64 comfortably covers the typical handful of instances per
// section (holdsIndexThreshold is 16) while bounding pooled retention.
const resetShrinkCap = 64

// Reset clears the transaction for reuse. It panics if locks are still
// held (every transaction must end with UnlockAll).
func (t *Txn) Reset() {
	if len(t.held) != 0 {
		panic("core: Txn.Reset with locks still held")
	}
	t.unlockedAt = 0
	t.haveLast = false
	t.heldIdx = nil
	if cap(t.held) > resetShrinkCap {
		t.held = nil
	}
	if cap(t.log) > resetShrinkCap {
		t.log = nil
	} else {
		t.log = t.log[:0]
	}
	t.traceOn = false
	t.traceHead, t.traceTotal = 0, 0
	if cap(t.trace) > resetShrinkCap {
		t.trace = nil
	} else {
		t.trace = t.trace[:0]
	}
	// Clear the optimistic snapshot state: a pooled transaction reused
	// by a different section must never validate against a stale version
	// vector, and a body that panicked mid-TryOptimistic (unwound by
	// Atomically) left optActive set.
	t.optActive = false
	if cap(t.optSnaps) > resetShrinkCap {
		t.optSnaps = nil
	} else {
		t.optSnaps = t.optSnaps[:0]
	}
}

// holdsIndexThreshold is the held-lock count past which Txn switches its
// LOCAL_SET membership test from the linear scan (cache-friendly, no
// allocation — wins for the typical handful of instances) to a map
// index. Without the index, lock-heavy transactions pay O(held²) in
// accumulated Holds scans, since Lock calls Holds on every acquisition.
const holdsIndexThreshold = 16

// Holds reports whether the transaction already holds a lock on the
// instance (the LOCAL_SET membership test of the LV macro, Fig 5).
func (t *Txn) Holds(s *Semantic) bool {
	if t.heldIdx != nil {
		_, ok := t.heldIdx[s]
		return ok
	}
	for i := range t.held {
		if t.held[i].sem == s {
			return true
		}
	}
	return false
}

// preLock runs the pre-acquisition checks shared by Lock, LockWithin
// and LockBatch: the LOCAL_SET membership test (nothing to do when the
// instance is nil or already held), the two-phase rule, and — for
// checked transactions — the OS2PL ordering assertion. It reports
// whether the caller should proceed to acquire. The panic formatting
// lives in orderPanic so this stays within the inlining budget and
// Lock's hot path remains call-free up to the acquisition.
func (t *Txn) preLock(s *Semantic, rank int) bool {
	if s == nil || t.Holds(s) {
		return false
	}
	if t.unlockedAt > 0 {
		panic("core: S2PL violation: lock after unlock in the same transaction")
	}
	if t.checked && t.haveLast && (rank < t.lastRank || (rank == t.lastRank && s.id <= t.lastID)) {
		t.orderPanic(s, rank)
	}
	return true
}

func (t *Txn) orderPanic(s *Semantic, rank int) {
	panic(fmt.Sprintf(
		"core: OS2PL violation: locking (rank=%d,id=%d) after (rank=%d,id=%d)",
		rank, s.id, t.lastRank, t.lastID))
}

// Lock acquires mode m on instance s unless the transaction already
// holds a lock on s — exactly the LV macro of Fig 5 generalized to a
// specific mode. Passing a nil instance is a no-op (the null check of
// Fig 5). The rank is the instance's position in the static lock order
// (<ts over equivalence classes, §3.3); the checked variant asserts that
// acquisitions follow (rank, unique-id) lexicographic order.
func (t *Txn) Lock(s *Semantic, m ModeID, rank int) {
	if !t.preLock(s, rank) {
		return
	}
	// acquireLogged rather than Acquire so a blocked acquisition exposes
	// this transaction's log to the stall watchdog (nil for unchecked
	// transactions — identical to Acquire then).
	s.acquireLogged(m, t.log)
	t.recordHeld(s, m, rank)
}

// LockWithin is Lock with bounded patience: it waits at most patience
// for the acquisition, returning nil once the lock is held (or was
// already held, or s is nil) and a *StallError naming the conflicting
// holder slots if the wait timed out. A timed-out LockWithin leaves the
// transaction exactly as it was — nothing acquired, nothing recorded —
// so the caller may retry, release and restart, or surface the error.
func (t *Txn) LockWithin(s *Semantic, m ModeID, rank int, patience time.Duration) error {
	if !t.preLock(s, rank) {
		return nil
	}
	if err := s.acquireWithin(m, patience, nil, t.log); err != nil {
		return err
	}
	t.recordHeld(s, m, rank)
	return nil
}

// LockWithinCancel is LockWithin with an additional cancellation
// channel: closing cancel while the acquisition is parked makes it
// withdraw cleanly and return ErrCanceled, with the transaction exactly
// as it was — nothing acquired, nothing recorded, earlier-held locks
// untouched (the enclosing section's epilogue releases those). The
// resilience layer's hedged reads use this to revoke the pessimistic
// side of a read race the moment the optimistic hedge validates.
func (t *Txn) LockWithinCancel(s *Semantic, m ModeID, rank int, patience time.Duration, cancel <-chan struct{}) error {
	if !t.preLock(s, rank) {
		return nil
	}
	if err := s.acquireWithin(m, patience, cancel, t.log); err != nil {
		return err
	}
	t.recordHeld(s, m, rank)
	return nil
}

// BatchLock is one constituent of a fused prologue acquisition: the
// instance, the mode to take on it, and the instance's class rank in
// the static lock order.
type BatchLock struct {
	Sem  *Semantic
	Mode ModeID
	Rank int
}

// LockBatch acquires every constituent lock of a fused prologue in one
// call. Acquisition follows the OS2PL (rank, unique-id) order
// regardless of argument order: the entries are sorted in place by
// (Rank, instance id), so a synthesized prologue whose same-rank
// instances are only known at run time (the LV2 pattern of Fig 12) can
// pass them unordered. Nil instances and instances already held are
// skipped, exactly as in Lock.
//
// Consecutive entries naming the same instance are acquired as one
// batched acquisition (Semantic.AcquireBatch): all their counter slots
// are claimed in one pass, and a conflict registers a single waiter
// with the union conflict mask instead of one waiter per mode. Distinct
// instances still acquire one at a time — blocking mid-prologue with
// earlier locks held is precisely what OS2PL makes safe.
func (t *Txn) LockBatch(locks ...BatchLock) {
	// Insertion sort by (rank, id): prologue batches are small (a
	// handful of entries), and the slice is typically already sorted —
	// codegen emits rank groups in ascending rank order.
	for i := 1; i < len(locks); i++ {
		for j := i; j > 0 && batchLess(&locks[j], &locks[j-1]); j-- {
			locks[j], locks[j-1] = locks[j-1], locks[j]
		}
	}
	i := 0
	for i < len(locks) {
		s := locks[i].Sem
		if s == nil {
			i++
			continue
		}
		j := i + 1
		for j < len(locks) && locks[j].Sem == s {
			j++
		}
		if !t.preLock(s, locks[i].Rank) {
			i = j
			continue
		}
		if j-i == 1 {
			s.acquireLogged(locks[i].Mode, t.log)
		} else {
			// Several modes destined for the same instance: claim them
			// all in one pass over the mechanism's counter arrays.
			t.batchModes = t.batchModes[:0]
			for k := i; k < j; k++ {
				t.batchModes = append(t.batchModes, locks[k].Mode)
			}
			s.acquireBatchLogged(t.batchModes, t.log)
		}
		for k := i; k < j; k++ {
			t.recordHeld(s, locks[k].Mode, locks[k].Rank)
		}
		i = j
	}
}

// batchLess orders batch entries by (rank, instance id); nil instances
// sort first within their rank and are skipped during acquisition.
func batchLess(a, b *BatchLock) bool {
	if a.Rank != b.Rank {
		return a.Rank < b.Rank
	}
	var ai, bi uint64
	if a.Sem != nil {
		ai = a.Sem.id
	}
	if b.Sem != nil {
		bi = b.Sem.id
	}
	return ai < bi
}

// recordHeld performs the post-acquisition bookkeeping shared by Lock
// and LockWithin: LOCAL_SET membership, the order-tracking state, and
// the checked acquisition log.
func (t *Txn) recordHeld(s *Semantic, m ModeID, rank int) {
	t.held = append(t.held, heldLock{sem: s, mode: m, rank: rank})
	if t.heldIdx != nil {
		t.heldIdx[s] = struct{}{}
	} else if len(t.held) > holdsIndexThreshold {
		t.heldIdx = make(map[*Semantic]struct{}, 2*len(t.held))
		for i := range t.held {
			t.heldIdx[t.held[i].sem] = struct{}{}
		}
	}
	t.lastRank, t.lastID, t.haveLast = rank, s.id, true
	if t.checked {
		t.log = append(t.log, Acquisition{Rank: rank, ID: s.id, Mode: m})
	}
	if t.traceOn {
		t.traceRecord(Acquisition{Rank: rank, ID: s.id, Mode: m})
	}
}

// LockOrdered acquires the same mode on several same-rank instances in
// unique-id order — the LV2 pattern of Fig 12 generalized from two
// variables to any number. Nil instances are skipped.
func (t *Txn) LockOrdered(rank int, m ModeID, ss ...*Semantic) {
	switch len(ss) {
	case 0:
		return
	case 1:
		t.Lock(ss[0], m, rank)
		return
	case 2:
		a, b := ss[0], ss[1]
		if a != nil && b != nil && b.id < a.id {
			a, b = b, a
		}
		if a == nil {
			a, b = b, nil
		}
		t.Lock(a, m, rank)
		t.Lock(b, m, rank)
		return
	}
	sorted := make([]*Semantic, 0, len(ss))
	for _, s := range ss {
		if s != nil {
			sorted = append(sorted, s)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].id < sorted[j].id })
	for _, s := range sorted {
		t.Lock(s, m, rank)
	}
}

// Observe is the optimistic counterpart of Lock, valid only inside a
// TryOptimistic body: instead of acquiring mode m on instance s it
// snapshots the version counter of m's mechanism (after checking that
// no conflicting mode currently has a holder) for end-of-body
// validation. Mirroring Lock's LV semantics, a nil instance and a
// re-observation of an already-observed instance are no-ops. Observe
// reports whether the observation is admissible; false — a conflicting
// holder is visible, the instance's adaptive gate currently refuses
// optimistic execution, or the instance runs the version-less v1
// mechanism (DisableMechV2) — means the body should give up and let
// TryOptimistic fail over to the pessimistic prologue.
func (t *Txn) Observe(s *Semantic, m ModeID, rank int) bool {
	if !t.optActive {
		panic("core: Txn.Observe outside TryOptimistic")
	}
	if s == nil {
		return true
	}
	for i := range t.optSnaps {
		if t.optSnaps[i].sem == s {
			return true // LOCAL_SET: one observation per instance
		}
	}
	if !s.optimisticAllowed() {
		return false
	}
	ver, ok := s.observeMode(m)
	if !ok {
		// A conflicting holder is visible right now: the pessimistic
		// prologue would have blocked. This is a refusal, not a failed
		// validation — no body ran, nothing is re-executed — and it must
		// not feed the gate's failure window: fallback holders (which a
		// gate closure itself produces) refuse every optimist behind
		// them, and accounting those as failures locks the gate shut on
		// evidence of its own making.
		s.recordRefusal()
		return false
	}
	t.optSnaps = append(t.optSnaps, optSnap{sem: s, mode: m, rank: rank, ver: ver})
	return true
}

// TryOptimistic runs body lock-free: body calls Observe where the
// pessimistic section would Lock, performs its (read-only) operations,
// and returns false to give up early — typically when an Observe is
// refused. TryOptimistic then validates every observation and reports
// whether the optimistic execution committed; on false the caller must
// discard the body's results and re-run the section through the
// pessimistic prologue. The body must not acquire any lock and must
// not mutate shared ADT state — the synthesizer only emits optimistic
// envelopes for sections it certified read-only, and internal/verify
// re-proves both properties on every emitted ir.Optimistic node.
//
// A panic inside body unwinds through TryOptimistic without cleanup;
// the enclosing Atomically epilogue and Reset restore the transaction's
// optimistic state before any reuse.
func (t *Txn) TryOptimistic(body func(*Txn) bool) bool {
	if t.optActive {
		panic("core: nested TryOptimistic")
	}
	t.optSnaps = t.optSnaps[:0]
	t.optActive = true
	ok := body(t)
	t.optActive = false
	if ok {
		ok = t.validateOptimistic()
	}
	t.optSnaps = t.optSnaps[:0]
	return ok
}

// validateOptimistic re-checks every observation with one version
// compare per observed instance (see Semantic.validateMode for why the
// acquire-side bump makes a holder re-scan unnecessary). Outcomes are
// recorded per instance — a hit on each instance that validated, a
// failed validation on the instance that did not — feeding the
// per-instance adaptive gates.
func (t *Txn) validateOptimistic() bool {
	for i := range t.optSnaps {
		sn := &t.optSnaps[i]
		if !sn.sem.validateMode(sn.mode, sn.ver) {
			sn.sem.recordValidation(false)
			return false
		}
	}
	for i := range t.optSnaps {
		t.optSnaps[i].sem.recordValidation(true)
	}
	return true
}

// Observed reports whether the transaction's current optimistic body
// has observed instance s (test hook; the optimistic LOCAL_SET).
func (t *Txn) Observed(s *Semantic) bool {
	for i := range t.optSnaps {
		if t.optSnaps[i].sem == s {
			return true
		}
	}
	return false
}

// UnlockInstance releases all modes held on instance s — the early lock
// release of Appendix A ("if(x!=null) x.unlockAll()" moved before the end
// of the section). A batched acquisition may have taken several modes on
// one instance; every one of them is released. After the first release
// the transaction may not lock again (two-phase rule).
func (t *Txn) UnlockInstance(s *Semantic) {
	if s == nil {
		return
	}
	released := false
	for i := 0; i < len(t.held); i++ {
		if t.held[i].sem == s {
			s.Release(t.held[i].mode)
			t.held = append(t.held[:i], t.held[i+1:]...)
			t.unlockedAt++
			released = true
			i--
		}
	}
	if released {
		delete(t.heldIdx, s)
	}
}

// UnlockAll releases every lock the transaction holds — the epilogue of
// §3.1. It is idempotent.
func (t *Txn) UnlockAll() {
	for i := len(t.held) - 1; i >= 0; i-- {
		h := t.held[i]
		h.sem.Release(h.mode)
		t.unlockedAt++
	}
	t.held = t.held[:0]
	t.heldIdx = nil
}

// HeldCount returns how many instance locks the transaction holds.
func (t *Txn) HeldCount() int { return len(t.held) }

// Assert verifies that a standard operation op on instance s is covered
// by a mode this transaction holds on s — the S2PL rule "t invokes a
// standard operation p of A only if t holds a lock on p of A" (§2.3).
// It is a no-op for unchecked transactions. Instrumented ADTs call this
// on every standard operation.
func (t *Txn) Assert(s *Semantic, op Op) {
	if !t.checked {
		return
	}
	// Inside an optimistic body nothing is held; coverage comes from the
	// observed modes instead — the body runs exactly the operations the
	// pessimistic section would, so each must be covered by the mode the
	// section would have locked.
	if t.optActive {
		for i := range t.optSnaps {
			if t.optSnaps[i].sem == s && s.table.CoversOp(t.optSnaps[i].mode, op) {
				return
			}
		}
		panic(fmt.Sprintf(
			"core: optimistic violation: operation %s on instance (id=%d) not covered by any observed mode", op, s.id))
	}
	// A batched acquisition may leave several held modes on one
	// instance; the operation is covered if any of them covers it.
	var last ModeID
	found := false
	for i := range t.held {
		if t.held[i].sem != s {
			continue
		}
		if s.table.CoversOp(t.held[i].mode, op) {
			return
		}
		last, found = t.held[i].mode, true
	}
	if found {
		panic(fmt.Sprintf(
			"core: S2PL violation: operation %s not covered by held mode %s",
			op, s.table.Mode(last)))
	}
	panic(fmt.Sprintf("core: S2PL violation: operation %s on unlocked instance (id=%d)", op, s.id))
}

// Checked reports whether protocol checking is enabled.
func (t *Txn) Checked() bool { return t.checked }

// defaultTraceCap is StartTrace's ring capacity when the caller passes
// a non-positive one: enough for every prologue in the paper corpus
// (the widest fused prologue locks a handful of instances) without
// growing the Txn noticeably.
const defaultTraceCap = 16

// StartTrace enables per-transaction acquisition tracing with a ring of
// the given capacity (≤0 selects a small default). Every subsequent
// acquisition — Lock, LockWithin, LockBatch, on checked and unchecked
// transactions alike — appends an Acquisition event; once the ring is
// full the oldest events are overwritten, so tracing a long section has
// fixed cost. Starting an already-started trace re-arms it empty,
// keeping the existing backing array when its capacity suffices.
func (t *Txn) StartTrace(capacity int) {
	if capacity <= 0 {
		capacity = defaultTraceCap
	}
	if cap(t.trace) < capacity {
		t.trace = make([]Acquisition, 0, capacity)
	} else {
		t.trace = t.trace[:0]
	}
	t.traceHead, t.traceTotal = 0, 0
	t.traceOn = true
}

// StopTrace disables tracing. The recorded events remain readable via
// TraceEvents until the next StartTrace or Reset.
func (t *Txn) StopTrace() { t.traceOn = false }

// traceRecord appends one event to the trace ring, overwriting the
// oldest event once the ring is full.
func (t *Txn) traceRecord(a Acquisition) {
	if len(t.trace) < cap(t.trace) {
		t.trace = append(t.trace, a)
	} else {
		t.trace[t.traceHead] = a
		t.traceHead++
		if t.traceHead == len(t.trace) {
			t.traceHead = 0
		}
	}
	t.traceTotal++
}

// TraceEvents returns a copy of the traced acquisition events, oldest
// first. If more than the ring's capacity were recorded, only the most
// recent capacity events are available (TraceTotal reports how many were
// recorded in all). Returns nil if tracing was never started.
func (t *Txn) TraceEvents() []Acquisition {
	if len(t.trace) == 0 {
		return nil
	}
	out := make([]Acquisition, 0, len(t.trace))
	out = append(out, t.trace[t.traceHead:]...)
	out = append(out, t.trace[:t.traceHead]...)
	return out
}

// TraceTotal returns how many acquisition events were recorded since
// StartTrace, including any that the ring has since overwritten.
func (t *Txn) TraceTotal() int { return t.traceTotal }

// Acquisitions returns the lock acquisitions the transaction performed
// since it was created or Reset, in order. Only checked transactions
// record acquisitions; for unchecked transactions the result is nil.
// The returned slice is valid until the next Reset.
func (t *Txn) Acquisitions() []Acquisition { return t.log }
