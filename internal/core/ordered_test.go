package core

import (
	"testing"
)

func TestIntervalPhiBuckets(t *testing.T) {
	phi := NewIntervalPhi(4, 100)
	if phi.N() != 4 {
		t.Fatal("N wrong")
	}
	cases := map[int64]int{0: 0, 24: 0, 25: 1, 49: 1, 50: 2, 75: 3, 99: 3}
	for v, want := range cases {
		if got := phi.Abstract(v); got != want {
			t.Errorf("Abstract(%d) = %d, want %d", v, got, want)
		}
	}
	// Clamping keeps Abstract total on all ints.
	if phi.Abstract(int64(-5)) != 0 || phi.Abstract(int64(1000)) != 3 {
		t.Error("out-of-domain ints must clamp to edge buckets")
	}
	// Bucket bounds are consistent with Abstract on interior buckets.
	for b := 1; b < 3; b++ {
		lo, hi := phi.Bounds(b)
		if phi.Abstract(lo) != b || phi.Abstract(hi) != b {
			t.Errorf("bucket %d bounds [%d,%d] not self-consistent", b, lo, hi)
		}
	}
	// Edge buckets are unbounded toward their side.
	if lo, _ := phi.Bounds(0); lo != minInt64 {
		t.Error("bucket 0 must extend to -inf")
	}
	if _, hi := phi.Bounds(3); hi != maxInt64 {
		t.Error("last bucket must extend to +inf")
	}
}

func TestArgsLTConcrete(t *testing.T) {
	lt := ArgsLT(0, 0)
	if !lt.Holds([]Value{int64(1)}, []Value{int64(2)}) {
		t.Error("1 < 2")
	}
	if lt.Holds([]Value{int64(2)}, []Value{int64(2)}) {
		t.Error("2 < 2 must fail")
	}
	if lt.Holds([]Value{"x"}, []Value{int64(2)}) {
		t.Error("non-int must not satisfy LT")
	}
	gt := ArgsGT(0, 1)
	if !gt.Holds([]Value{int64(9)}, []Value{int64(0), int64(5)}) {
		t.Error("9 > 5")
	}
	// Swapped round trip: (a0 < b0) swapped means first op is the old
	// second: a0 > b0.
	sw := lt.Swapped()
	if !sw.Holds([]Value{int64(5)}, []Value{int64(2)}) {
		t.Error("swapped LT must be GT")
	}
	if sw.Swapped().String() != lt.String() {
		t.Errorf("double swap: %s vs %s", sw.Swapped(), lt)
	}
}

func TestArgsLTSymbolic(t *testing.T) {
	phi := NewIntervalPhi(4, 100) // buckets [..24][25..49][50..74][75..]
	lt := ArgsLT(0, 0)
	if !lt.Definitely([]ModeArg{MAbs(0)}, []ModeArg{MAbs(2)}, phi) {
		t.Error("bucket0 < bucket2 must be definite")
	}
	if lt.Definitely([]ModeArg{MAbs(1)}, []ModeArg{MAbs(1)}, phi) {
		t.Error("same bucket not definitely ordered")
	}
	if lt.Definitely([]ModeArg{MAbs(2)}, []ModeArg{MAbs(1)}, phi) {
		t.Error("bucket2 < bucket1 is false")
	}
	if !lt.Definitely([]ModeArg{MConst(int64(10))}, []ModeArg{MAbs(1)}, phi) {
		t.Error("10 < [25..49] definite")
	}
	if lt.Definitely([]ModeArg{MConst(int64(30))}, []ModeArg{MAbs(1)}, phi) {
		t.Error("30 vs [25..49] not definite")
	}
	if lt.Definitely([]ModeArg{MStar()}, []ModeArg{MAbs(3)}, phi) {
		t.Error("* never definitely ordered")
	}
	// Under an unordered φ, never definite.
	hphi := NewPhi(4)
	if lt.Definitely([]ModeArg{MAbs(0)}, []ModeArg{MAbs(2)}, hphi) {
		t.Error("hash buckets carry no order")
	}
}

// TestRangeLockModes is the headline of the ordered extension: an
// OrderedMap-style spec where rangeCount(lo,hi) commutes with put(k,v)
// iff k < lo or k > hi, compiled over an IntervalPhi — inserts outside
// a scanned range proceed concurrently with the scan, inserts inside
// it block.
func TestRangeLockModes(t *testing.T) {
	spec := NewSpec("OM",
		MethodSig{"put", 2},
		MethodSig{"rangeCount", 2},
	)
	spec.Commute("put", "put", ArgsNE(0, 0))
	spec.Commute("put", "rangeCount", OrCond(ArgsLT(0, 0), ArgsGT(0, 1)))
	spec.Commute("rangeCount", "rangeCount", Always)

	phi := NewIntervalPhi(8, 800) // buckets of width 100
	putSet := SymSetOf(SymOpOf("put", VarArg("k"), Star()))
	rangeSet := SymSetOf(SymOpOf("rangeCount", VarArg("lo"), VarArg("hi")))
	tbl := NewModeTable(spec, []SymSet{putSet, rangeSet}, TableOptions{Phi: phi, MaxModes: 8 + 64})

	put := tbl.Set(putSet).Binder("k")
	rng := tbl.Set(rangeSet).Binder("lo", "hi")

	scan := rng(int64(250), int64(349)) // covers buckets 2..3
	below := put(int64(50))             // bucket 0
	above := put(int64(750))            // bucket 7
	inside := put(int64(300))           // bucket 3

	if !tbl.Commute(scan, below) {
		t.Error("insert below the scanned range must commute")
	}
	if !tbl.Commute(scan, above) {
		t.Error("insert above the scanned range must commute")
	}
	if tbl.Commute(scan, inside) {
		t.Error("insert inside the scanned range must conflict")
	}
	if !tbl.Commute(scan, rng(int64(0), int64(799))) {
		t.Error("scans commute with scans")
	}

	// Behavioral: a held scan blocks only inside inserts.
	s := NewSemantic(tbl)
	s.Acquire(scan)
	if !s.TryAcquire(below) {
		t.Error("outside insert blocked by scan")
	}
	if s.TryAcquire(inside) {
		t.Error("inside insert admitted during scan")
	}
	s.Release(below)
	s.Release(scan)
	if !s.TryAcquire(inside) {
		t.Error("inside insert blocked after scan released")
	}
	s.Release(inside)
}

// TestRangeLockSoundness: brute-force check of the compiled range
// table: modes declared commutative only cover commuting ops.
func TestRangeLockSoundness(t *testing.T) {
	spec := NewSpec("OM", MethodSig{"put", 2}, MethodSig{"rangeCount", 2})
	spec.Commute("put", "put", ArgsNE(0, 0))
	spec.Commute("put", "rangeCount", OrCond(ArgsLT(0, 0), ArgsGT(0, 1)))
	spec.Commute("rangeCount", "rangeCount", Always)
	phi := NewIntervalPhi(4, 40)
	tbl := NewModeTable(spec, []SymSet{
		SymSetOf(SymOpOf("put", VarArg("k"), Star())),
		SymSetOf(SymOpOf("rangeCount", VarArg("lo"), VarArg("hi"))),
	}, TableOptions{Phi: phi, MaxModes: 64})

	var ops []Op
	for k := int64(0); k < 40; k += 3 {
		ops = append(ops, NewOp("put", k, "v"))
		ops = append(ops, NewOp("rangeCount", k, k+7))
	}
	modes := tbl.Modes()
	for i := range modes {
		for j := range modes {
			if !tbl.Commute(ModeID(i), ModeID(j)) {
				continue
			}
			for _, oa := range ops {
				if !modes[i].Covers(oa, phi) {
					continue
				}
				for _, ob := range ops {
					if !modes[j].Covers(ob, phi) {
						continue
					}
					if !spec.OpsCommute(oa, ob) {
						t.Fatalf("F_c(%s,%s)=true but %s / %s conflict", modes[i], modes[j], oa, ob)
					}
				}
			}
		}
	}
}
