package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// optTestEnv compiles a two-set map table (per-key read set, per-key
// write set) and one instance, the fixture shared by the optimistic
// protocol tests.
type optTestEnv struct {
	tbl   *ModeTable
	sem   *Semantic
	read  SetRef
	write SetRef
}

func newOptTestEnv(t testing.TB) *optTestEnv {
	t.Helper()
	readSet := SymSetOf(SymOpOf("get", VarArg("k")))
	writeSet := SymSetOf(SymOpOf("put", VarArg("k"), Star()), SymOpOf("remove", VarArg("k")))
	tbl := NewModeTable(mapSpec(), []SymSet{readSet, writeSet}, TableOptions{Phi: NewPhi(8)})
	return &optTestEnv{
		tbl:   tbl,
		sem:   NewSemantic(tbl),
		read:  tbl.Set(readSet),
		write: tbl.Set(writeSet),
	}
}

// tryRead runs one optimistic section observing the read mode for key,
// returning whether it committed.
func (e *optTestEnv) tryRead(tx *Txn, key int) bool {
	m := e.read.Mode1(key)
	return tx.TryOptimistic(func(t *Txn) bool {
		return t.Observe(e.sem, m, 0)
	})
}

func TestOptimisticUncontendedCommits(t *testing.T) {
	e := newOptTestEnv(t)
	tx := NewTxn()
	if !e.tryRead(tx, 3) {
		t.Fatal("uncontended optimistic read failed to validate")
	}
	st := e.sem.Stats()
	if st.OptimisticHits != 1 || st.OptimisticRetries != 0 {
		t.Fatalf("stats after clean commit: hits=%d retries=%d, want 1/0", st.OptimisticHits, st.OptimisticRetries)
	}
}

func TestOptimisticObserveSeesHolder(t *testing.T) {
	e := newOptTestEnv(t)
	w := e.write.Mode1(3)
	e.sem.Acquire(w)
	tx := NewTxn()
	if e.tryRead(tx, 3) {
		t.Fatal("optimistic read validated while a conflicting writer held its mode")
	}
	e.sem.Release(w)
	st := e.sem.Stats()
	if st.OptimisticRefusals != 1 {
		t.Fatalf("refusals=%d after observe-time conflict, want 1", st.OptimisticRefusals)
	}
	if st.OptimisticRetries != 0 {
		t.Fatalf("retries=%d after observe-time conflict, want 0 — no body ran, nothing was re-executed", st.OptimisticRetries)
	}
	if !e.tryRead(tx, 3) {
		t.Fatal("optimistic read failed after the writer released")
	}
}

func TestOptimisticValidationCatchesWriterInWindow(t *testing.T) {
	e := newOptTestEnv(t)
	rm := e.read.Mode1(3)
	w := e.write.Mode1(3)
	tx := NewTxn()
	ok := tx.TryOptimistic(func(tt *Txn) bool {
		if !tt.Observe(e.sem, rm, 0) {
			return false
		}
		// A conflicting writer acquires AND releases entirely inside the
		// read window: only the version counter can catch it.
		e.sem.Acquire(w)
		e.sem.Release(w)
		return true
	})
	if ok {
		t.Fatal("validation passed despite a conflicting release inside the window")
	}
}

func TestVersionBumpsOnConflictingAcquireOnly(t *testing.T) {
	e := newOptTestEnv(t)
	w := e.write.Mode1(5)
	v0 := e.sem.Version(w)
	e.sem.Acquire(w)
	if got := e.sem.Version(w); got != v0+1 {
		t.Fatalf("acquire bumped version %d -> %d, want +1", v0, got)
	}
	e.sem.Release(w)
	if got := e.sem.Version(w); got != v0+1 {
		t.Fatalf("release bumped version: %d -> %d", v0+1, got)
	}
	// A failed tryAcquire retreats a transient claim; an acquisition
	// that never stood must not look like one to validators.
	e.sem.Acquire(w)
	v1 := e.sem.Version(w)
	if e.sem.TryAcquire(e.write.Mode1(5)) {
		t.Fatal("conflicting TryAcquire unexpectedly succeeded")
	}
	if got := e.sem.Version(w); got != v1 {
		t.Fatalf("failed tryAcquire bumped version %d -> %d", v1, got)
	}
	e.sem.Release(w)
}

func TestOptimisticV1MechanismFallsBack(t *testing.T) {
	e := newOptTestEnv(t)
	e.sem.DisableMechV2 = true
	tx := NewTxn()
	if e.tryRead(tx, 3) {
		t.Fatal("optimistic read succeeded on the version-less v1 mechanism")
	}
}

// TestOptimisticGateDisablesAndProbes drives the windowed failure gate:
// a window of validation failures — bodies that ran to completion but
// were invalidated by an in-window conflicting acquire — must disable
// the optimistic path, and once the contention clears the countdown
// probe must re-open it.
func TestOptimisticGateDisablesAndProbes(t *testing.T) {
	e := newOptTestEnv(t)
	w := e.write.Mode1(3)
	tx := NewTxn()

	// Each attempt observes cleanly, then a conflicting writer acquires
	// and releases inside the read window: the body's work is discarded
	// at validation — the genuine re-execution cost the gate exists to
	// bound.
	failValidation := func() bool {
		return tx.TryOptimistic(func(tt *Txn) bool {
			if !tt.Observe(e.sem, e.read.Mode1(3), 0) {
				return false
			}
			e.sem.Acquire(w)
			e.sem.Release(w)
			return true
		})
	}
	for i := 0; i < optWindow; i++ {
		if failValidation() {
			t.Fatal("read validated despite an in-window conflicting acquire")
		}
	}
	if e.sem.OptimisticEnabled() {
		t.Fatal("gate still enabled after a full window of failures")
	}

	// Disabled: attempts fail fast without touching the instance, until
	// the countdown admits a probe, which now succeeds and re-opens.
	reopened := false
	for i := 0; i < optProbeInterval+8; i++ {
		if e.tryRead(tx, 3) {
			reopened = true
			break
		}
	}
	if !reopened {
		t.Fatal("gate never probed back open after contention cleared")
	}
	if !e.sem.OptimisticEnabled() {
		t.Fatal("gate not re-enabled after a successful probe")
	}
}

// TestOptimisticRefusalsDoNotCloseGate is the regression test for the
// gate's feedback loop: observe-time refusals — attempts turned away by
// a visible conflicting holder before any body ran — must not count
// toward the gate's failure window. A closed gate serializes sections
// through the pessimistic fallback, and every fallback holder refuses
// the optimists arriving behind it; if those refusals fed the window,
// the gate would hold itself shut on evidence it manufactured. Here a
// held writer refuses several windows' worth of attempts and the gate
// must stay open throughout.
func TestOptimisticRefusalsDoNotCloseGate(t *testing.T) {
	e := newOptTestEnv(t)
	w := e.write.Mode1(3)
	tx := NewTxn()

	e.sem.Acquire(w)
	for i := 0; i < 4*optWindow; i++ {
		if e.tryRead(tx, 3) {
			t.Fatal("read validated under a held conflicting mode")
		}
	}
	e.sem.Release(w)

	if !e.sem.OptimisticEnabled() {
		t.Fatal("observe-time refusals closed the gate; refusals waste no work and must not count as failures")
	}
	st := e.sem.Stats()
	if got, want := st.OptimisticRefusals, uint64(4*optWindow); got != want {
		t.Fatalf("refusals=%d, want %d", got, want)
	}
	if st.OptimisticRetries != 0 {
		t.Fatalf("retries=%d, want 0 — no body ever ran", st.OptimisticRetries)
	}
	if !e.tryRead(tx, 3) {
		t.Fatal("optimistic read failed after the holder released")
	}
}

// TestOptimisticSnapshotClearedOnReset is the pooled-transaction
// staleness audit mirroring TestMemoSurvivesResetAcrossTables: unlike
// the memo, the optimistic snapshot buffer must NOT survive Reset — a
// pooled Txn reused by another section would otherwise validate against
// a stale version vector (and a body that panicked mid-TryOptimistic
// would leave the transaction stuck in optimistic state).
func TestOptimisticSnapshotClearedOnReset(t *testing.T) {
	e := newOptTestEnv(t)
	rm := e.read.Mode1(3)
	w := e.write.Mode1(3)

	tx := NewTxn()
	if !e.tryRead(tx, 3) {
		t.Fatal("warm-up read failed")
	}
	// Invalidate instance A's snapshot, then Reset (the pool does this
	// between sections) and run a section that observes a different
	// instance. A stale surviving snapshot of A would fail validation.
	e.sem.Acquire(w)
	e.sem.Release(w)
	tx.Reset()
	if tx.optActive || len(tx.optSnaps) != 0 {
		t.Fatalf("Reset left optimistic state: active=%v snaps=%d", tx.optActive, len(tx.optSnaps))
	}
	other := newOptTestEnv(t)
	if !other.tryRead(tx, 3) {
		t.Fatal("pooled reuse validated against a stale version vector")
	}

	// Panic path: a body that dies inside TryOptimistic unwinds through
	// Atomically; Reset must clear optActive so the next use works.
	func() {
		defer func() { _ = recover() }()
		tx.Atomically(func(tt *Txn) {
			tt.TryOptimistic(func(tt *Txn) bool {
				tt.Observe(e.sem, rm, 0)
				panic("boom")
			})
		})
	}()
	tx.Reset()
	if tx.optActive || len(tx.optSnaps) != 0 {
		t.Fatalf("Reset after mid-body panic left optimistic state: active=%v snaps=%d", tx.optActive, len(tx.optSnaps))
	}
	if !e.tryRead(tx, 3) {
		t.Fatal("transaction unusable after mid-body panic and Reset")
	}

	// Shrink: a section that observed a pathological number of instances
	// must not pin its peak buffer through the pool.
	sems := make([]*Semantic, resetShrinkCap+8)
	for i := range sems {
		sems[i] = NewSemantic(e.tbl)
	}
	tx.TryOptimistic(func(tt *Txn) bool {
		for _, s := range sems {
			if !tt.Observe(s, rm, 0) {
				return false
			}
		}
		return false // discard; only the buffer growth matters
	})
	tx.Reset()
	if tx.optSnaps != nil {
		t.Fatalf("Reset kept an oversized snapshot buffer (cap=%d > %d)", cap(tx.optSnaps), resetShrinkCap)
	}
}

// TestOptimisticAllocFree pins the optimistic hot path and the stats
// read path at zero allocations, like the fused-prologue and memo alloc
// tests.
func TestOptimisticAllocFree(t *testing.T) {
	e := newOptTestEnv(t)
	m := e.read.Mode1(3)
	tx := NewTxn()
	body := func(tt *Txn) bool { return tt.Observe(e.sem, m, 0) }
	attempt := func() {
		if !tx.TryOptimistic(body) {
			t.Fatal("uncontended attempt failed")
		}
	}
	attempt() // warm the snapshot buffer
	if n := testing.AllocsPerRun(100, attempt); n != 0 {
		t.Fatalf("TryOptimistic allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = e.sem.Stats() }); n != 0 {
		t.Fatalf("Stats allocates %v per op, want 0", n)
	}
}

// TestOptimisticTornWindow races optimistic readers against pessimistic
// writers maintaining the invariant x == y under the write mode. A
// validated optimistic read must never observe the writers' torn
// mid-section state — that is exactly the protocol's guarantee.
func TestOptimisticTornWindow(t *testing.T) {
	e := newOptTestEnv(t)
	rm := e.read.Mode1(3)
	wm := e.write.Mode1(3)
	var x, y atomic.Int64
	const iters = 20000

	var wg sync.WaitGroup
	var torn atomic.Int64
	var commits atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := NewTxn()
			for i := 0; i < iters; i++ {
				tx.Lock(e.sem, wm, 0)
				x.Add(1)
				y.Add(1)
				tx.UnlockAll()
				tx.Reset()
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := NewTxn()
			for i := 0; i < iters; i++ {
				var a, b int64
				ok := tx.TryOptimistic(func(tt *Txn) bool {
					if !tt.Observe(e.sem, rm, 0) {
						return false
					}
					a = x.Load()
					b = y.Load()
					return true
				})
				if ok {
					commits.Add(1)
					if a != b {
						torn.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d validated optimistic reads observed torn writer state", n)
	}
	t.Logf("optimistic commits: %d / %d", commits.Load(), int64(4*iters))
}
