package core

import (
	"errors"
	"fmt"
	"math/bits"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the liveness layer of the lock runtime: bounded
// acquisition (AcquireWithin) returning structured StallErrors, and the
// Watchdog that samples registered instances for acquisitions blocked
// past a threshold. The protocol itself is deadlock-free under OS2PL
// (§3.3); these tools exist for the failure modes the protocol cannot
// rule out — a holder that stalls, loops, or (before panic-safe sections
// existed) leaked its locks entirely.

// HolderSlot identifies one lock-mode counter slot that was holding a
// stalled acquisition back: the mechanism (partition) index, the local
// counter slot, the canonical mode name occupying that slot, and how
// many holders were counted beyond the acquirer's own claim.
type HolderSlot struct {
	Mechanism int    `json:"mechanism"`
	Slot      int    `json:"slot"`
	Mode      string `json:"mode"`
	Count     int32  `json:"count"`
}

// StallError reports a bounded acquisition that exhausted its patience.
// It always names at least one holder slot: the timeout path re-scans
// under the mechanism's lock at the moment of giving up, so the holders
// listed were genuinely present then — never a stale observation.
type StallError struct {
	Instance uint64        // unique id of the Semantic instance (the paper's unique(x))
	Class    string        // ADT class name of the instance's spec
	Mode     string        // the mode whose acquisition stalled
	Waited   time.Duration // how long the acquirer waited before giving up
	Holders  []HolderSlot  // conflicting slots with holders at timeout
	Log      []Acquisition // the blocked transaction's acquisition log, when known
}

func (e *StallError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: acquisition of mode %s on %s instance %d stalled for %v; held by",
		e.Mode, e.Class, e.Instance, e.Waited.Round(time.Millisecond))
	for i, h := range e.Holders {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, " %s(x%d)", h.Mode, h.Count)
	}
	if len(e.Log) > 0 {
		fmt.Fprintf(&b, "; acquirer already held %d lock(s)", len(e.Log))
	}
	return b.String()
}

// ErrCanceled is returned by the cancellable bounded-acquisition paths
// (AcquireWithinCancel, Txn.LockWithinCancel) when the caller's cancel
// channel closed before the mode was acquired. A canceled acquisition
// leaves no trace in the mechanism — same cleanup discipline as a
// timeout — and is NOT counted as a stall: the caller chose to leave.
var ErrCanceled = errors.New("core: bounded acquisition canceled")

// AcquireWithin is Acquire with bounded patience: it blocks at most
// patience waiting for mode m and returns nil once the mode is held, or
// a *StallError naming the conflicting holder slots if the wait timed
// out. A timed-out call leaves no trace in the mechanism — the waiter is
// deregistered, its transient claim retreated, and any wake token a
// racing release donated is forwarded to the remaining waiters.
// Callers use Txn.LockWithin rather than calling this directly.
func (s *Semantic) AcquireWithin(m ModeID, patience time.Duration) error {
	return s.acquireWithin(m, patience, nil, nil)
}

// AcquireWithinCancel is AcquireWithin with an additional cancellation
// channel: closing cancel while the acquisition is parked makes it
// withdraw cleanly and return ErrCanceled. A nil cancel is equivalent
// to AcquireWithin. The resilience layer's hedged reads use this to
// revoke a pessimistic acquisition the moment an optimistic hedge
// validates.
func (s *Semantic) AcquireWithinCancel(m ModeID, patience time.Duration, cancel <-chan struct{}) error {
	return s.acquireWithin(m, patience, cancel, nil)
}

func (s *Semantic) acquireWithin(m ModeID, patience time.Duration, cancel <-chan struct{}, log []Acquisition) error {
	p := s.table.part[m]
	if p < 0 {
		return nil
	}
	start := time.Now()
	if s.DisableMechV2 {
		holders, out := s.v1[p].acquireWithin(s.table.localIdx[m], s.table.conflict[m], patience, cancel)
		switch out {
		case acqOK:
			return nil
		case acqCanceled:
			return ErrCanceled
		}
		s.v1[p].stalls.Add(1)
		return s.stallError(m, p, holders, time.Since(start), log)
	}
	mech := &s.mechs[p]
	c := &s.table.masks[m]
	if !s.DisableFastPath && mech.tryAcquire(c) {
		mech.fastPath.Add(1)
		return nil
	}
	holders, out := mech.acquireWithin(c, patience, cancel, log)
	switch out {
	case acqOK:
		return nil
	case acqCanceled:
		return ErrCanceled
	}
	mech.stalls.Add(1)
	return s.stallError(m, p, holders, time.Since(start), log)
}

// stallError assembles the structured report for a timed-out
// acquisition, resolving local counter slots back to mode names.
func (s *Semantic) stallError(m ModeID, p int, holders []stallSlot, waited time.Duration, log []Acquisition) error {
	e := &StallError{
		Instance: s.id,
		Class:    s.table.Spec.ADT,
		Mode:     fmt.Sprint(s.table.Mode(m)),
		Waited:   waited,
	}
	for _, h := range holders {
		e.Holders = append(e.Holders, HolderSlot{
			Mechanism: p,
			Slot:      int(h.slot),
			Mode:      s.table.modeNameOfSlot(p, int(h.slot)),
			Count:     h.count,
		})
	}
	if len(log) > 0 {
		e.Log = append([]Acquisition(nil), log...)
	}
	emitStall(StallEvent{
		Instance:  s.id,
		Class:     e.Class,
		Mechanism: p,
		Source:    StallTimeout,
		Waited:    waited,
		Waiters:   1,
	})
	return e
}

// ---------------------------------------------------------------------
// Unified stall observation
// ---------------------------------------------------------------------

// StallSource names which clock produced a StallEvent: the bounded
// acquisition that self-clocked its own exhausted patience, or the
// watchdog sampler that found waiters blocked past its threshold.
type StallSource uint8

const (
	// StallTimeout: an AcquireWithin/LockWithin call gave up. Exactly one
	// event per timed-out acquisition; Waited is the patience actually
	// spent, Waiters is 1.
	StallTimeout StallSource = iota
	// StallWatchdog: a Watchdog scan found a mechanism with waiters
	// blocked past the threshold. One event per stalled mechanism per
	// scan — repeated scans over the same stuck waiter re-emit, so
	// watchdog events measure sustained pressure, not distinct failures.
	// Waited is the longest observed wait, Waiters the over-threshold
	// waiter count.
	StallWatchdog
)

func (s StallSource) String() string {
	if s == StallWatchdog {
		return "watchdog"
	}
	return "timeout"
}

// StallEvent is one stall observation, from either clock. Both the
// timeout path and the watchdog funnel through the same observer so a
// consumer (the resilience layer's breaker windows) sees one coherent
// event stream instead of two contradictory counts.
type StallEvent struct {
	Instance  uint64
	Class     string
	Mechanism int
	Source    StallSource
	Waited    time.Duration
	Waiters   int
}

// stallObserver holds the process-wide observer. An atomic pointer (not
// a mutex) keeps the nil-observer check on the stall path to one load.
var stallObserver atomic.Pointer[func(StallEvent)]

// SetStallObserver installs fn as the process-wide stall observer; both
// bounded-acquisition timeouts and watchdog threshold crossings are
// delivered to it. fn is called synchronously from the stalling
// goroutine or the watchdog sampler — keep it brief and never acquire
// semantic locks inside it. Passing nil uninstalls. Returns the
// previous observer so tests and layered consumers can chain or
// restore.
func SetStallObserver(fn func(StallEvent)) (prev func(StallEvent)) {
	var p *func(StallEvent)
	if fn != nil {
		p = &fn
	}
	if old := stallObserver.Swap(p); old != nil {
		return *old
	}
	return nil
}

func emitStall(ev StallEvent) {
	if fn := stallObserver.Load(); fn != nil {
		(*fn)(ev)
	}
}

// modeNameOfSlot resolves a mechanism-local counter slot back to the
// name of the canonical mode occupying it (merged modes share a slot;
// the first is reported). Diagnostics only — a linear scan over modes.
func (t *ModeTable) modeNameOfSlot(p, slot int) string {
	for i := range t.modes {
		if t.part[i] == p && t.localIdx[i] == slot {
			return fmt.Sprint(t.modes[i])
		}
	}
	return fmt.Sprintf("slot%d", slot)
}

// ---------------------------------------------------------------------
// Quiescence introspection
// ---------------------------------------------------------------------

// OutstandingHolds returns the total holder count currently recorded
// across the instance's mechanisms (both generations). Zero on a
// quiescent instance; a persistent nonzero value after all transactions
// have drained means locks leaked.
func (s *Semantic) OutstandingHolds() int64 {
	var n int64
	for i := range s.mechs {
		for j := range s.mechs[i].counts {
			n += int64(s.mechs[i].counts[j].Load())
		}
		for j := range s.v1[i].counts {
			n += int64(s.v1[i].counts[j].Load())
		}
	}
	return n
}

// CheckQuiesced verifies the instance is fully idle: every holder
// counter and summary counter zero, no published waiter-interest bits,
// and no registered waiters in any mechanism. The chaos harness calls
// this after a fault burst drains to prove nothing leaked.
func (s *Semantic) CheckQuiesced() error {
	for p := range s.mechs {
		m := &s.mechs[p]
		m.mu.Lock()
		nWaiters := len(m.waiters)
		m.mu.Unlock()
		if nWaiters != 0 {
			return fmt.Errorf("core: instance %d mech %d: %d waiter(s) still registered", s.id, p, nWaiters)
		}
		for j := range m.counts {
			if c := m.counts[j].Load(); c != 0 {
				return fmt.Errorf("core: instance %d mech %d slot %d (%s): count %d, want 0",
					s.id, p, j, s.table.modeNameOfSlot(p, j), c)
			}
		}
		for j := range m.summary {
			if c := m.summary[j].Load(); c != 0 {
				return fmt.Errorf("core: instance %d mech %d word %d: summary %d, want 0", s.id, p, j, c)
			}
		}
		for j := range m.waitMask {
			if bits := m.waitMask[j].Load(); bits != 0 {
				return fmt.Errorf("core: instance %d mech %d word %d: waitMask %#x, want 0", s.id, p, j, bits)
			}
		}
		v1 := &s.v1[p]
		if w := v1.waiters.Load(); w != 0 {
			return fmt.Errorf("core: instance %d v1 mech %d: %d waiter(s) still registered", s.id, p, w)
		}
		for j := range v1.counts {
			if c := v1.counts[j].Load(); c != 0 {
				return fmt.Errorf("core: instance %d v1 mech %d slot %d: count %d, want 0", s.id, p, j, c)
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Stall watchdog
// ---------------------------------------------------------------------

// WaiterInfo describes one acquisition the watchdog found blocked past
// its threshold: the counter slots the waiter's conflict mask covers,
// how long it has been waiting, and — for transaction-driven
// acquisitions — the blocked transaction's acquisition log.
type WaiterInfo struct {
	Slots  []int         `json:"slots"`
	Waited time.Duration `json:"waited"`
	// Sampled reports whether Waited is a measured duration. Waiters
	// that parked before wait timing was available on their mechanism
	// carry no timestamp; for those Waited is a lower bound — time since
	// a sampling gate opened (the instance becoming watched, or a
	// SetWaitTiming enable, whichever came first) — and Sampled is false.
	Sampled bool          `json:"sampled"`
	Log     []Acquisition `json:"log,omitempty"`
}

// StallReport is one watchdog observation of a mechanism with at least
// one waiter blocked past the threshold: the instance, the mechanism,
// the published waiter-interest words, the slots currently holding
// counts (with mode names), and every over-threshold waiter.
type StallReport struct {
	Instance  uint64       `json:"instance"`
	Class     string       `json:"class"`
	Mechanism int          `json:"mechanism"`
	WaitMask  []uint64     `json:"waitMask"`
	Holders   []HolderSlot `json:"holders"`
	Waiters   []WaiterInfo `json:"waiters"`
}

// String renders the report for logs. Lower-bound waits of pre-Watch
// waiters (Sampled false) are prefixed "≥" so an unsampled bound is
// never mistaken for a measured duration.
func (r StallReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: stall on %s instance %d mech %d:", r.Class, r.Instance, r.Mechanism)
	for i, h := range r.Holders {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, " held %s(x%d)", h.Mode, h.Count)
	}
	for _, w := range r.Waiters {
		bound := ""
		if !w.Sampled {
			bound = "≥"
		}
		fmt.Fprintf(&b, "; waiter on slots %v blocked %s%v", w.Slots, bound, w.Waited.Round(time.Millisecond))
		if len(w.Log) > 0 {
			fmt.Fprintf(&b, " holding %d lock(s)", len(w.Log))
		}
	}
	return b.String()
}

// WatchdogConfig tunes a Watchdog. The zero value is not useful; use
// sensible thresholds (e.g. 100ms/25ms in tests, seconds in production).
type WatchdogConfig struct {
	// Threshold is the wait duration past which a blocked acquisition
	// counts as stalled.
	Threshold time.Duration
	// Interval is the sampling period of the background sampler
	// (Start/Stop). Scan may also be called synchronously at any time.
	Interval time.Duration
	// OnStall receives one report per stalled mechanism per sample. It is
	// called from the sampler goroutine; keep it brief.
	OnStall func(StallReport)
}

// Watchdog samples registered Semantic instances for acquisitions
// blocked past a threshold. One watchdog typically covers every
// instance of a ModeTable (register instances at creation); sampling
// cost is one mutex acquisition per mechanism per interval, so it is
// cheap enough to leave running in production.
type Watchdog struct {
	cfg WatchdogConfig

	// interval is the live sampling period (nanoseconds). It starts at
	// cfg.Interval and can be retuned while the sampler runs
	// (SetInterval) — the adaptive control plane slows sampling on a
	// quiet runtime and speeds it up when stalls recur.
	interval atomic.Int64

	mu   sync.Mutex
	sems []*Semantic

	stop chan struct{}
	done chan struct{}
}

// NewWatchdog creates a watchdog with the given configuration.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Threshold <= 0 {
		cfg.Threshold = time.Second
	}
	if cfg.Interval <= 0 {
		cfg.Interval = cfg.Threshold / 2
	}
	d := &Watchdog{cfg: cfg}
	d.interval.Store(int64(cfg.Interval))
	return d
}

// SetInterval retunes the background sampler's period at runtime.
// Non-positive intervals are ignored. A running sampler applies the
// change at its next tick (it waits out at most one old interval
// first); a stopped one picks it up on Start.
func (d *Watchdog) SetInterval(iv time.Duration) {
	if iv > 0 {
		d.interval.Store(int64(iv))
	}
}

// Interval returns the sampler's current period.
func (d *Watchdog) Interval() time.Duration { return time.Duration(d.interval.Load()) }

// Watch registers an instance for sampling. It also marks the
// instance's mechanisms as watched, which turns on the per-waiter wait
// timestamps the sampler reads — unwatched instances skip that clock
// call on the slow path entirely. Waiters already parked at the moment
// of registration carry no timestamp; the sampler still reports them,
// with their wait lower-bounded from the moment of registration
// (WaiterInfo.Sampled false), so a stuck pre-Watch waiter cannot stay
// invisible forever.
func (d *Watchdog) Watch(s *Semantic) {
	now := time.Now().UnixNano()
	for p := range s.mechs {
		m := &s.mechs[p]
		if !m.watched.Swap(true) {
			m.watchedAt.CompareAndSwap(0, now)
		}
	}
	d.mu.Lock()
	d.sems = append(d.sems, s)
	d.mu.Unlock()
}

// Scan samples every watched instance once, returning a report for each
// mechanism that has at least one waiter blocked past the threshold.
// Each report is also delivered to the process-wide stall observer
// (SetStallObserver) as a StallWatchdog event, the same stream the
// timeout path feeds — one clock, not two.
func (d *Watchdog) Scan() []StallReport {
	d.mu.Lock()
	sems := append([]*Semantic(nil), d.sems...)
	d.mu.Unlock()

	now := time.Now()
	var out []StallReport
	for _, s := range sems {
		for p := range s.mechs {
			if r, ok := s.sampleMech(p, now, d.cfg.Threshold); ok {
				out = append(out, r)
				var longest time.Duration
				for _, w := range r.Waiters {
					if w.Waited > longest {
						longest = w.Waited
					}
				}
				emitStall(StallEvent{
					Instance:  r.Instance,
					Class:     r.Class,
					Mechanism: r.Mechanism,
					Source:    StallWatchdog,
					Waited:    longest,
					Waiters:   len(r.Waiters),
				})
			}
		}
	}
	return out
}

// sampleMech inspects one mechanism under its lock and assembles a
// report if any waiter is past the threshold. Holding mu freezes the
// registry; counter loads are racy by nature (holders come and go) but
// each load is atomic, so the snapshot is per-slot consistent.
func (s *Semantic) sampleMech(p int, now time.Time, threshold time.Duration) (StallReport, bool) {
	m := &s.mechs[p]
	m.mu.Lock()
	defer m.mu.Unlock()

	var waiters []WaiterInfo
	for _, w := range m.waiters {
		var waited time.Duration
		sampled := !w.since.IsZero()
		if sampled {
			waited = now.Sub(w.since)
		} else if at := m.waitBoundAt(); at != 0 {
			// Parked before timing was available on this mechanism; its
			// true wait start is unknown. Lower-bound the wait from the
			// earliest open sampling gate — the instance becoming
			// watched or a SetWaitTiming enable — so the bound keeps
			// growing and a permanently stuck pre-gate waiter crosses
			// the threshold and gets reported instead of being skipped
			// forever.
			waited = now.Sub(time.Unix(0, at))
		} else {
			continue // never watched: no wait bound at all
		}
		if waited < threshold {
			continue
		}
		var slots []int
		for i := range w.mask {
			base := int(w.mask[i].w) << 6
			bs := w.mask[i].bits
			for bs != 0 {
				slots = append(slots, base+bits.TrailingZeros64(bs))
				bs &= bs - 1
			}
		}
		wi := WaiterInfo{Slots: slots, Waited: waited, Sampled: sampled}
		if len(w.log) > 0 {
			wi.Log = append([]Acquisition(nil), w.log...)
		}
		waiters = append(waiters, wi)
	}
	if len(waiters) == 0 {
		return StallReport{}, false
	}

	r := StallReport{
		Instance:  s.id,
		Class:     s.table.Spec.ADT,
		Mechanism: p,
		Waiters:   waiters,
	}
	for j := range m.waitMask {
		r.WaitMask = append(r.WaitMask, m.waitMask[j].Load())
	}
	for j := range m.counts {
		if c := m.counts[j].Load(); c > 0 {
			r.Holders = append(r.Holders, HolderSlot{
				Mechanism: p,
				Slot:      j,
				Mode:      s.table.modeNameOfSlot(p, j),
				Count:     c,
			})
		}
	}
	return r, true
}

// Start launches the background sampler; reports go to cfg.OnStall.
func (d *Watchdog) Start() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stop != nil {
		return // already running
	}
	d.stop = make(chan struct{})
	d.done = make(chan struct{})
	go d.run(d.stop, d.done)
}

func (d *Watchdog) run(stop, done chan struct{}) {
	defer close(done)
	iv := d.Interval()
	ticker := time.NewTicker(iv)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			if cur := d.Interval(); cur != iv {
				iv = cur
				ticker.Reset(iv)
			}
			if d.cfg.OnStall == nil {
				continue
			}
			for _, r := range d.Scan() {
				d.cfg.OnStall(r)
			}
		}
	}
}

// Stop halts the background sampler and waits for it to exit. Safe to
// call when the sampler was never started.
func (d *Watchdog) Stop() {
	d.mu.Lock()
	stop, done := d.stop, d.done
	d.stop, d.done = nil, nil
	d.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
