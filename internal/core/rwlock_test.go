package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestRegisterDegeneratesToRWLock demonstrates §5.1's remark that
// locking modes generalize read/write lock modes: for a Register ADT
// (read/write, reads commute) with the symbolic sets {read()} and
// {write(*)}, the compiled table IS a readers/writer lock — concurrent
// readers, exclusive writers.
func TestRegisterDegeneratesToRWLock(t *testing.T) {
	spec := NewSpec("Register",
		MethodSig{"read", 0},
		MethodSig{"write", 1},
	)
	spec.Commute("read", "read", Always)

	readSet := SymSetOf(SymOpOf("read"))
	writeSet := SymSetOf(SymOpOf("write", Star()))
	tbl := NewModeTable(spec, []SymSet{readSet, writeSet}, TableOptions{Phi: NewPhi(4)})

	rd := tbl.Set(readSet).Mode()
	wr := tbl.Set(writeSet).Mode()
	if !tbl.Commute(rd, rd) {
		t.Error("read mode must self-commute (shared)")
	}
	if tbl.Commute(rd, wr) || tbl.Commute(wr, wr) {
		t.Error("write mode must be exclusive")
	}
	if tbl.NumMechanisms() != 1 {
		t.Errorf("RW lock is one mechanism, got %d", tbl.NumMechanisms())
	}

	// Behavioral check: N readers share; a writer excludes them and
	// other writers.
	s := NewSemantic(tbl)
	var readers, writers, violations atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if g < 4 {
					s.Acquire(rd)
					readers.Add(1)
					if writers.Load() != 0 {
						violations.Add(1)
					}
					readers.Add(-1)
					s.Release(rd)
				} else {
					s.Acquire(wr)
					if writers.Add(1) != 1 || readers.Load() != 0 {
						violations.Add(1)
					}
					writers.Add(-1)
					s.Release(wr)
				}
			}
		}(g)
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Errorf("%d RW violations", violations.Load())
	}
}

// TestManySimultaneousReaders: the register's read mode admits any
// number of holders at once.
func TestManySimultaneousReaders(t *testing.T) {
	spec := NewSpec("Register", MethodSig{"read", 0}, MethodSig{"write", 1})
	spec.Commute("read", "read", Always)
	readSet := SymSetOf(SymOpOf("read"))
	tbl := NewModeTable(spec, []SymSet{readSet, SymSetOf(SymOpOf("write", Star()))}, TableOptions{Phi: NewPhi(2)})
	s := NewSemantic(tbl)
	rd := tbl.Set(readSet).Mode()
	for i := 0; i < 64; i++ {
		s.Acquire(rd)
	}
	if got := s.Holders(rd); got != 64 {
		t.Errorf("holders = %d", got)
	}
	for i := 0; i < 64; i++ {
		s.Release(rd)
	}
}
