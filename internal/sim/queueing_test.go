package sim

import (
	"math"
	"testing"
)

// TestUtilizationLaw validates the simulator against basic queueing
// arithmetic: T threads each alternating c ticks of private work with a
// critical section of s ticks under one mutex. The mutex is a server
// with demand T·s per (c+s) of offered thread time:
//
//   - while T·s ≤ c+s the system is not saturated and throughput is
//     close to T/(c+s) transactions per tick;
//   - past saturation throughput is pinned at exactly 1/s.
func TestUtilizationLaw(t *testing.T) {
	const c, s = 90, 10
	const perThread = 400
	for _, T := range []int{1, 2, 4, 8, 10, 16, 32} {
		sm := New()
		mu := NewMutex("m")
		for i := 0; i < T; i++ {
			n := 0
			sm.AddThread(func() []Step {
				if n >= perThread {
					return nil
				}
				n++
				return []Step{W(c), Acq(mu, 0), W(s), Rel(mu, 0)}
			})
		}
		mk, txns := sm.Run()
		gotTput := float64(txns) / float64(mk)
		var want float64
		if T*s <= c+s {
			want = float64(T) / float64(c+s)
		} else {
			want = 1.0 / float64(s)
		}
		if math.Abs(gotTput-want)/want > 0.05 {
			t.Errorf("T=%d: throughput %.4f, analytic %.4f", T, gotTput, want)
		}
	}
}

// TestSaturatedMutexExact: a pure critical-section workload is exactly
// serialized: makespan equals total work regardless of thread count.
func TestSaturatedMutexExact(t *testing.T) {
	for _, T := range []int{1, 3, 7} {
		sm := New()
		mu := NewMutex("m")
		for i := 0; i < T; i++ {
			n := 0
			sm.AddThread(func() []Step {
				if n >= 100 {
					return nil
				}
				n++
				return []Step{Acq(mu, 0), W(5), Rel(mu, 0)}
			})
		}
		mk, txns := sm.Run()
		if mk != int64(T)*100*5 {
			t.Errorf("T=%d: makespan %d, want %d", T, mk, T*100*5)
		}
		if txns != int64(T)*100 {
			t.Errorf("T=%d: txns %d", T, txns)
		}
	}
}

// TestStripedAnalytic: with K stripes and each thread pinned to its own
// stripe, throughput is T independent servers — perfect scaling.
func TestStripedAnalytic(t *testing.T) {
	const T = 8
	sm := New()
	r := NewStriped("s", T)
	for i := 0; i < T; i++ {
		stripe := i
		n := 0
		sm.AddThread(func() []Step {
			if n >= 100 {
				return nil
			}
			n++
			return []Step{Acq(r, stripe), W(10), Rel(r, stripe)}
		})
	}
	mk, _ := sm.Run()
	if mk != 100*10 {
		t.Errorf("makespan %d, want 1000 (perfect overlap)", mk)
	}
}
