// Package sim is a deterministic virtual-time concurrency simulator —
// the stand-in for the paper's 32-core Xeon (DESIGN.md substitution 3).
//
// The paper's figures measure how much parallelism each concurrency-
// control policy admits at a given thread count. That quantity is a
// property of the conflict structure (which transactions block which),
// not of the silicon, so it can be reproduced exactly on any host: the
// simulator executes each virtual thread's transaction steps under a
// discrete-event scheduler with a virtual clock; computation advances a
// thread's local time, and lock acquisitions block exactly per the
// policy's compatibility matrix. Throughput is completed transactions
// divided by the virtual makespan. Each virtual thread runs on its own
// virtual core, matching the paper's sweeps (threads ≤ 32 = cores).
//
// Everything is deterministic: a fixed scheduler tie-break (time, then
// thread id) and seeded workload generators make every run repeatable.
package sim

import (
	"container/heap"
	"fmt"
)

// StepKind discriminates transaction steps.
type StepKind uint8

const (
	// Work advances the thread's clock by Cost ticks (computation, ADT
	// operation execution, I/O, lock-bookkeeping overhead).
	Work StepKind = iota
	// Acquire blocks until Mode is admissible on Res, then holds it.
	Acquire
	// Release drops one hold of Mode on Res.
	Release
)

// Step is one step of a transaction.
type Step struct {
	Kind StepKind
	Cost int64 // Work only
	Res  *Res  // Acquire/Release
	Mode int   // Acquire/Release
}

// W returns a Work step.
func W(cost int64) Step { return Step{Kind: Work, Cost: cost} }

// Acq returns an Acquire step.
func Acq(r *Res, mode int) Step { return Step{Kind: Acquire, Res: r, Mode: mode} }

// Rel returns a Release step.
func Rel(r *Res, mode int) Step { return Step{Kind: Release, Res: r, Mode: mode} }

// Res is a simulated lock resource with a mode-compatibility matrix —
// the abstraction covering plain mutexes (one self-incompatible mode),
// readers/writer locks, striped locks (one mode per stripe) and
// semantic-lock mechanisms (F_c).
type Res struct {
	name    string
	fc      func(a, b int) bool
	counts  []int
	waiters []*thread // FIFO
}

// NewRes creates a resource with n modes and compatibility function fc
// (fc(a,b) reports whether holders of a and b may coexist).
func NewRes(name string, n int, fc func(a, b int) bool) *Res {
	return &Res{name: name, fc: fc, counts: make([]int, n)}
}

// NewMutex creates an exclusive single-mode resource.
func NewMutex(name string) *Res {
	return NewRes(name, 1, func(_, _ int) bool { return false })
}

// NewStriped creates an n-stripe resource: mode i is stripe i; distinct
// stripes are compatible, same stripes are not. (A transaction touching
// two stripes acquires both modes.)
func NewStriped(name string, n int) *Res {
	return NewRes(name, n, func(a, b int) bool { return a != b })
}

// NewRW creates a readers/writer resource: mode 0 = read, 1 = write.
func NewRW(name string) *Res {
	return NewRes(name, 2, func(a, b int) bool { return a == 0 && b == 0 })
}

// NewStripedRW creates 2n modes: mode 2i = read stripe i, 2i+1 = write
// stripe i. Distinct stripes are compatible; same-stripe pairs are
// compatible only when both are reads.
func NewStripedRW(name string, n int) *Res {
	return NewRes(name, 2*n, func(a, b int) bool {
		if a/2 != b/2 {
			return true
		}
		return a%2 == 0 && b%2 == 0
	})
}

// admissible reports whether a new holder of mode may enter now.
func (r *Res) admissible(mode int) bool {
	for m, c := range r.counts {
		if c > 0 && !r.fc(mode, m) {
			return false
		}
	}
	return true
}

// thread is one virtual thread/core.
type thread struct {
	id    int
	gen   func() []Step // next transaction's steps; nil return = done
	steps []Step
	ip    int
	done  int64
	blocked bool
}

// Sim runs a set of virtual threads to completion.
type Sim struct {
	now     int64
	seq     int64
	pq      eventHeap
	threads []*thread
	// LockOverhead is charged (as virtual ticks) on every Acquire, on
	// top of explicit Work steps; it models the constant cost of the
	// lock operation itself and can differ per policy via the workload.
	LockOverhead int64
}

// New creates an empty simulation.
func New() *Sim { return &Sim{} }

// AddThread registers a virtual thread; gen returns the next
// transaction's steps, or nil when the thread is finished.
func (s *Sim) AddThread(gen func() []Step) {
	t := &thread{id: len(s.threads), gen: gen}
	s.threads = append(s.threads, t)
}

// Run executes all threads to completion and returns the virtual
// makespan in ticks and the total number of completed transactions.
func (s *Sim) Run() (makespan int64, txns int64) {
	s.now = 0
	for _, t := range s.threads {
		s.schedule(t, 0)
	}
	for s.pq.Len() > 0 {
		ev := heap.Pop(&s.pq).(event)
		if ev.at > s.now {
			s.now = ev.at
		}
		s.step(ev.th)
	}
	var total int64
	for _, t := range s.threads {
		total += t.done
		if t.blocked {
			panic(fmt.Sprintf("sim: thread %d still blocked at end (deadlock?)", t.id))
		}
	}
	return s.now, total
}

// step advances one thread until it blocks, sleeps (Work), or finishes.
func (s *Sim) step(t *thread) {
	for {
		if t.ip >= len(t.steps) {
			if t.steps != nil {
				t.done++
			}
			t.steps = t.gen()
			t.ip = 0
			if t.steps == nil {
				return // thread finished
			}
			if len(t.steps) == 0 {
				t.done++
				continue
			}
		}
		st := t.steps[t.ip]
		switch st.Kind {
		case Work:
			t.ip++
			if st.Cost > 0 {
				s.schedule(t, st.Cost)
				return
			}
		case Acquire:
			if !st.Res.admissible(st.Mode) {
				t.blocked = true
				st.Res.waiters = append(st.Res.waiters, t)
				return
			}
			st.Res.counts[st.Mode]++
			t.ip++
			if s.LockOverhead > 0 {
				s.schedule(t, s.LockOverhead)
				return
			}
		case Release:
			st.Res.counts[st.Mode]--
			if st.Res.counts[st.Mode] < 0 {
				panic("sim: release without acquire on " + st.Res.name)
			}
			t.ip++
			s.wake(st.Res)
		}
	}
}

// wake admits eligible waiters in FIFO order.
func (s *Sim) wake(r *Res) {
	if len(r.waiters) == 0 {
		return
	}
	remaining := r.waiters[:0]
	for _, t := range r.waiters {
		st := t.steps[t.ip]
		if st.Res == r && r.admissible(st.Mode) {
			r.counts[st.Mode]++
			t.ip++
			t.blocked = false
			s.schedule(t, s.LockOverhead)
		} else {
			remaining = append(remaining, t)
		}
	}
	r.waiters = remaining
}

func (s *Sim) schedule(t *thread, delay int64) {
	s.seq++
	heap.Push(&s.pq, event{at: s.now + delay, seq: s.seq, th: t})
}

// event is a scheduler wake-up.
type event struct {
	at  int64
	seq int64
	th  *thread
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
