package sim

import "testing"

// genN returns a generator producing n copies of the given transaction.
func genN(n int, steps func() []Step) func() []Step {
	i := 0
	return func() []Step {
		if i >= n {
			return nil
		}
		i++
		return steps()
	}
}

// TestSerialWork: one thread, pure work — makespan is the sum.
func TestSerialWork(t *testing.T) {
	s := New()
	s.AddThread(genN(10, func() []Step { return []Step{W(7)} }))
	mk, txns := s.Run()
	if mk != 70 || txns != 10 {
		t.Errorf("makespan=%d txns=%d, want 70/10", mk, txns)
	}
}

// TestParallelWork: independent threads overlap perfectly.
func TestParallelWork(t *testing.T) {
	s := New()
	for i := 0; i < 8; i++ {
		s.AddThread(genN(10, func() []Step { return []Step{W(7)} }))
	}
	mk, txns := s.Run()
	if mk != 70 || txns != 80 {
		t.Errorf("makespan=%d txns=%d, want 70/80 (perfect overlap)", mk, txns)
	}
}

// TestMutexSerializes: work under one mutex sums across threads.
func TestMutexSerializes(t *testing.T) {
	s := New()
	mu := NewMutex("m")
	for i := 0; i < 4; i++ {
		s.AddThread(genN(5, func() []Step {
			return []Step{Acq(mu, 0), W(10), Rel(mu, 0)}
		}))
	}
	mk, txns := s.Run()
	if mk != 4*5*10 || txns != 20 {
		t.Errorf("makespan=%d txns=%d, want 200/20 (full serialization)", mk, txns)
	}
}

// TestStripedScales: threads on distinct stripes do not interfere.
func TestStripedScales(t *testing.T) {
	s := New()
	r := NewStriped("s", 8)
	for i := 0; i < 8; i++ {
		stripe := i
		s.AddThread(genN(5, func() []Step {
			return []Step{Acq(r, stripe), W(10), Rel(r, stripe)}
		}))
	}
	mk, _ := s.Run()
	if mk != 50 {
		t.Errorf("makespan=%d, want 50 (distinct stripes overlap)", mk)
	}
	// Same stripe: serialized.
	s2 := New()
	r2 := NewStriped("s", 8)
	for i := 0; i < 8; i++ {
		s2.AddThread(genN(5, func() []Step {
			return []Step{Acq(r2, 3), W(10), Rel(r2, 3)}
		}))
	}
	mk2, _ := s2.Run()
	if mk2 != 400 {
		t.Errorf("same-stripe makespan=%d, want 400", mk2)
	}
}

// TestRWLock: readers overlap, writers exclude.
func TestRWLock(t *testing.T) {
	s := New()
	rw := NewRW("rw")
	for i := 0; i < 4; i++ {
		s.AddThread(genN(3, func() []Step {
			return []Step{Acq(rw, 0), W(10), Rel(rw, 0)}
		}))
	}
	mk, _ := s.Run()
	if mk != 30 {
		t.Errorf("reader makespan=%d, want 30", mk)
	}
	s2 := New()
	rw2 := NewRW("rw")
	s2.AddThread(genN(3, func() []Step { return []Step{Acq(rw2, 0), W(10), Rel(rw2, 0)} }))
	s2.AddThread(genN(3, func() []Step { return []Step{Acq(rw2, 1), W(10), Rel(rw2, 1)} }))
	mk2, _ := s2.Run()
	if mk2 != 60 {
		t.Errorf("reader+writer makespan=%d, want 60 (serialized)", mk2)
	}
}

// TestStripedRW covers the striped readers/writer resource.
func TestStripedRW(t *testing.T) {
	r := NewStripedRW("srw", 4)
	if !r.fc(2*1, 2*1) {
		t.Error("reads on one stripe must be compatible")
	}
	if r.fc(2*1, 2*1+1) {
		t.Error("read/write on one stripe must conflict")
	}
	if !r.fc(2*1+1, 2*2+1) {
		t.Error("writes on distinct stripes must be compatible")
	}
}

// TestLockOverhead: per-acquire overhead is charged.
func TestLockOverhead(t *testing.T) {
	s := New()
	s.LockOverhead = 3
	mu := NewMutex("m")
	s.AddThread(genN(4, func() []Step { return []Step{Acq(mu, 0), W(10), Rel(mu, 0)} }))
	mk, _ := s.Run()
	if mk != 4*(10+3) {
		t.Errorf("makespan=%d, want 52", mk)
	}
}

// TestDeterminism: identical runs give identical results.
func TestDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		s := New()
		r := NewStriped("s", 4)
		for i := 0; i < 6; i++ {
			stripe := i % 4
			n := 0
			s.AddThread(func() []Step {
				if n >= 20 {
					return nil
				}
				n++
				st := (stripe + n) % 4
				return []Step{W(int64(n % 3)), Acq(r, st), W(5), Rel(r, st)}
			})
		}
		return s.Run()
	}
	m1, t1 := run()
	m2, t2 := run()
	if m1 != m2 || t1 != t2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", m1, t1, m2, t2)
	}
}

// TestFIFOWakeup: waiters are admitted in arrival order when
// compatible; a blocked writer does not starve behind a reader stream
// forever in this simple FIFO policy... here we just check the basic
// wake path works with multiple waiters.
func TestFIFOWakeup(t *testing.T) {
	s := New()
	mu := NewMutex("m")
	order := []int{}
	for i := 0; i < 3; i++ {
		id := i
		n := 0
		s.AddThread(func() []Step {
			if n >= 1 {
				return nil
			}
			n++
			_ = id
			return []Step{W(int64(id)), Acq(mu, 0), W(10), Rel(mu, 0)}
		})
	}
	mk, txns := s.Run()
	_ = order
	if txns != 3 {
		t.Fatalf("txns=%d", txns)
	}
	// Thread 0 starts at 0, holds [0,10); thread 1 arrives at 1, waits,
	// holds [10,20); thread 2 arrives at 2, holds [20,30).
	if mk != 30 {
		t.Errorf("makespan=%d, want 30", mk)
	}
}

// TestReleaseWithoutAcquirePanics guards the bookkeeping.
func TestReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s := New()
	mu := NewMutex("m")
	s.AddThread(genN(1, func() []Step { return []Step{Rel(mu, 0)} }))
	s.Run()
}
