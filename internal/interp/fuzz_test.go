package interp_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/adtspecs"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/synth"
)

// genSection builds a random but well-formed atomic section over a
// fixed vocabulary of ADT variables: maps m0/m1, sets s0/s1 (locals,
// possibly loaded from maps or allocated), a queue q, and thread-local
// ints k0..k2. The generator is seeded, so every failure is
// reproducible by its seed.
func genSection(rng *rand.Rand, name string) *ir.Atomic {
	sec := &ir.Atomic{
		Name: name,
		Vars: []ir.Param{
			{Name: "m0", Type: "Map", IsADT: true, NonNull: true},
			{Name: "m1", Type: "Map", IsADT: true, NonNull: true},
			{Name: "q", Type: "Queue", IsADT: true, NonNull: true},
			{Name: "s0", Type: "Set", IsADT: true},
			{Name: "s1", Type: "Set", IsADT: true},
			{Name: "k0", Type: "int"},
			{Name: "k1", Type: "int"},
			{Name: "k2", Type: "int"},
		},
	}
	sec.Body = genBlock(rng, 3, 2+rng.Intn(5))
	return sec
}

func keyVar(rng *rand.Rand) ir.Expr {
	return ir.VarRef{Name: fmt.Sprintf("k%d", rng.Intn(3))}
}

func mapVar(rng *rand.Rand) string { return fmt.Sprintf("m%d", rng.Intn(2)) }
func setVar(rng *rand.Rand) string { return fmt.Sprintf("s%d", rng.Intn(2)) }

func genBlock(rng *rand.Rand, depth, n int) ir.Block {
	var b ir.Block
	for i := 0; i < n; i++ {
		b = append(b, genStmt(rng, depth)...)
	}
	return b
}

func genStmt(rng *rand.Rand, depth int) []ir.Stmt {
	switch c := rng.Intn(10); {
	case c < 2: // map read into a set variable
		return []ir.Stmt{&ir.Call{Recv: mapVar(rng), Method: "get", Args: []ir.Expr{keyVar(rng)}, Assign: setVar(rng)}}
	case c < 3: // allocate + publish a set
		sv := setVar(rng)
		return []ir.Stmt{
			&ir.Assign{Lhs: sv, NewType: "Set"},
			&ir.Call{Recv: mapVar(rng), Method: "put", Args: []ir.Expr{keyVar(rng), ir.VarRef{Name: sv}}},
		}
	case c < 5: // guarded set operation
		sv := setVar(rng)
		var inner ir.Stmt
		if rng.Intn(2) == 0 {
			inner = &ir.Call{Recv: sv, Method: "add", Args: []ir.Expr{keyVar(rng)}}
		} else {
			inner = &ir.Call{Recv: sv, Method: "contains", Args: []ir.Expr{keyVar(rng)}, Assign: "k2"}
		}
		return []ir.Stmt{&ir.If{Cond: ir.NotNull{Var: sv}, Then: ir.Block{inner}}}
	case c < 6: // map remove
		return []ir.Stmt{&ir.Call{Recv: mapVar(rng), Method: "remove", Args: []ir.Expr{keyVar(rng)}}}
	case c < 7: // queue enqueue of a key
		return []ir.Stmt{&ir.Call{Recv: "q", Method: "enqueue", Args: []ir.Expr{keyVar(rng)}}}
	case c < 8 && depth > 0: // conditional block
		return []ir.Stmt{&ir.If{
			Cond: ir.OpaqueCond{Text: "k0", Reads: []string{"k0"}},
			Then: genBlock(rng, depth-1, 1+rng.Intn(3)),
			Else: genBlock(rng, depth-1, rng.Intn(2)),
		}}
	case c < 9: // thread-local shuffle
		return []ir.Stmt{&ir.Assign{Lhs: "k1", Rhs: ir.VarRef{Name: "k0"}}}
	default: // map containsKey into a local
		return []ir.Stmt{&ir.Call{Recv: mapVar(rng), Method: "containsKey", Args: []ir.Expr{keyVar(rng)}, Assign: "k2"}}
	}
}

// TestFuzzSynthesizedProtocol generates random programs, synthesizes
// them, and executes them concurrently with checked transactions: any
// S2PL violation (operation without a covering mode), ordering
// violation, or deadlock fails the test. This sweeps edge cases of the
// insertion, optimization and refinement passes that the hand-written
// tests don't reach.
func TestFuzzSynthesizedProtocol(t *testing.T) {
	const programs = 80
	for seed := int64(0); seed < programs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nSections := 1 + rng.Intn(2)
		prog := &synth.Program{Specs: adtspecs.All()}
		for i := 0; i < nSections; i++ {
			prog.Sections = append(prog.Sections, genSection(rng, fmt.Sprintf("fz%d_%d", seed, i)))
		}
		res, err := synth.Synthesize(prog, synth.Options{
			StopAfter: synth.StageRefine,
			Phi:       core.NewPhi(8), // small φ keeps 80 table compilations quick
		})
		if err != nil {
			t.Fatalf("seed %d: synthesize: %v", seed, err)
		}
		e := interp.NewExecutor(res, true)
		e.EvalOpaque = func(text string, env map[string]core.Value) core.Value {
			if text == "k0" {
				v, _ := env["k0"].(int)
				return v%2 == 0
			}
			panic("unexpected opaque " + text)
		}

		m0 := e.NewInstance("Map", "Map")
		m1 := e.NewInstance("Map", "Map")
		q := e.NewInstance("Queue", "Queue")

		var wg sync.WaitGroup
		errCh := make(chan error, 4)
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				lr := rand.New(rand.NewSource(seed*1000 + int64(g)))
				for i := 0; i < 25; i++ {
					env := map[string]core.Value{
						"m0": m0, "m1": m1, "q": q, "s0": nil, "s1": nil,
						"k0": lr.Intn(4), "k1": lr.Intn(4), "k2": 0,
					}
					if err := e.Run(lr.Intn(nSections), env); err != nil {
						errCh <- fmt.Errorf("seed %d: %w", seed, err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatal(err)
		}
	}
}
