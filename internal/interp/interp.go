// Package interp executes synthesized atomic sections (the output of
// internal/synth) against real ADT instances under the semantic-locking
// runtime. It is the end-to-end bridge of the reproduction: the same
// locking statements the compiler prints in Fig 2 are interpreted into
// core.Txn lock/unlock calls, standard operations dispatch to the
// linearizable containers of internal/adt, and — in checked mode — every
// operation is asserted against the held modes (S2PL) and the OS2PL
// order.
//
//semlockvet:file-ignore guardedby -- the executor IS the lock manager: Impl.Invoke bodies run under the semantic locks runStmt acquires from the synthesized plan, in checked mode asserted per-operation
package interp

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/synth"
)

// Impl is a dynamic ADT implementation: a method dispatcher over the
// containers in internal/adt (or any user-supplied state).
type Impl interface {
	Invoke(method string, args []core.Value) core.Value
}

// Instance pairs an ADT implementation with its semantic lock.
type Instance struct {
	Impl Impl
	Sem  *core.Semantic
	// Class is the equivalence-class key the instance belongs to.
	Class string
}

// Executor runs the sections of one synthesis result.
type Executor struct {
	Res *synth.Result
	// Registry creates implementations by ADT type name ("Map", "Set",
	// "Queue", ...). DefaultRegistry covers internal/adt.
	Registry map[string]func() Impl
	// Checked runs transactions with protocol checking (panics on S2PL
	// / ordering violations — used by the race tests).
	Checked bool
	// EvalOpaque evaluates ir.Opaque expressions and ir.OpaqueCond
	// conditions; optional. Receives the expression text and the
	// environment.
	EvalOpaque func(text string, env map[string]core.Value) core.Value

	wrappers map[string]*Instance // global wrapper instances by class key
}

// NewExecutor builds an executor with the default registry.
func NewExecutor(res *synth.Result, checked bool) *Executor {
	e := &Executor{Res: res, Registry: DefaultRegistry(), Checked: checked,
		wrappers: make(map[string]*Instance)}
	for _, w := range res.Wrappers {
		e.wrappers[w.Key] = &Instance{
			Impl:  &wrapperImpl{w: w},
			Sem:   core.NewSemantic(res.Tables[w.Key]),
			Class: w.Key,
		}
	}
	return e
}

// NewInstance creates an ADT instance of the given class key, with its
// semantic lock drawn from the class's compiled mode table. For a class
// whose key differs from its ADT type (custom abstraction), pass the
// type name too.
func (e *Executor) NewInstance(classKey, typeName string) *Instance {
	mk := e.Registry[typeName]
	if mk == nil {
		panic(fmt.Sprintf("interp: no implementation registered for ADT type %q", typeName))
	}
	tbl := e.Res.Tables[classKey]
	if tbl == nil {
		// Class never locked anywhere (e.g. unused); give it an
		// exclusive single-mode table so instances still work.
		cls := e.Res.Classes.ByKey[classKey]
		tbl = core.NewModeTable(cls.Spec, []core.SymSet{cls.Spec.AllOpsSet()}, core.TableOptions{})
	}
	return &Instance{Impl: mk(), Sem: core.NewSemantic(tbl), Class: classKey}
}

// OpHook observes every ADT operation a run performs: the instance's
// semantic-lock id, the operation, and its result. Used by the
// serializability tests to record transaction logs.
type OpHook func(instID uint64, op core.Op, result core.Value)

// Run executes section si with the given initial environment. ADT
// variables must be bound to *Instance values (or nil). The environment
// is mutated in place; the transaction's locks are always released, even
// on panic.
func (e *Executor) Run(si int, env map[string]core.Value) error {
	return e.RunWithHook(si, env, nil)
}

// RunWithHook is Run with an operation observer (nil behaves like Run).
func (e *Executor) RunWithHook(si int, env map[string]core.Value, hook OpHook) error {
	var tx *core.Txn
	if e.Checked {
		tx = core.NewCheckedTxn()
	} else {
		tx = core.NewTxn()
	}
	return e.RunWithTxn(si, env, tx, hook)
}

// RunWithTxn is RunWithHook with a caller-supplied transaction, so
// harnesses can inspect the transaction afterwards (e.g. the recorded
// acquisition order of a checked transaction). The transaction must be
// fresh or Reset; its locks are released before returning.
func (e *Executor) RunWithTxn(si int, env map[string]core.Value, tx *core.Txn, hook OpHook) (err error) {
	sec := e.Res.Sections[si]
	// Bind wrapper globals.
	for key, inst := range e.wrappers {
		gv := e.Res.Classes.ByKey[key].GlobalVar
		if _, ok := sec.Var(gv); ok {
			env[gv] = inst
		}
	}
	defer tx.UnlockAll()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("interp: section %s: %v", sec.Name, r)
		}
	}()
	e.runBlock(si, sec, sec.Body, env, tx, hook)
	return nil
}

func (e *Executor) runBlock(si int, sec *ir.Atomic, b ir.Block, env map[string]core.Value, tx *core.Txn, hook OpHook) {
	for _, s := range b {
		e.runStmt(si, sec, s, env, tx, hook)
	}
}

func (e *Executor) runStmt(si int, sec *ir.Atomic, s ir.Stmt, env map[string]core.Value, tx *core.Txn, hook OpHook) {
	switch x := s.(type) {
	case *ir.Prologue:
		// LOCAL_SET is the transaction's held-set; nothing to do.
	case *ir.Epilogue:
		tx.UnlockAll()
	case *ir.LV:
		inst := instOf(env[x.Var])
		if inst == nil {
			return
		}
		mode := e.modeFor(inst, x.Set, x.Generic, env)
		tx.Lock(inst.Sem, mode, e.Res.Rank(inst.Class))
	case *ir.LV2:
		var insts []*core.Semantic
		var mode core.ModeID
		var rank int
		have := false
		for _, v := range x.Vars {
			inst := instOf(env[v])
			if inst == nil {
				continue
			}
			if !have {
				mode = e.modeFor(inst, x.Set, x.Generic, env)
				rank = e.Res.Rank(inst.Class)
				have = true
			}
			insts = append(insts, inst.Sem)
		}
		if have {
			tx.LockOrdered(rank, mode, insts...)
		}
	case *ir.LockBatch:
		var locks []core.BatchLock
		for i := range x.Entries {
			en := &x.Entries[i]
			var mode core.ModeID
			var rank int
			have := false
			for _, v := range en.Vars {
				inst := instOf(env[v])
				if inst == nil {
					continue
				}
				if !have {
					mode = e.modeFor(inst, en.Set, en.Generic, env)
					rank = e.Res.Rank(inst.Class)
					have = true
				}
				locks = append(locks, core.BatchLock{Sem: inst.Sem, Mode: mode, Rank: rank})
			}
		}
		tx.LockBatch(locks...)
	case *ir.UnlockAllVar:
		if inst := instOf(env[x.Var]); inst != nil {
			tx.UnlockInstance(inst.Sem)
		}
	case *ir.Observe:
		// Optimistic counterpart of LV/LV2: snapshot the version counter
		// of the mode the lock statement would have taken. A failed
		// observation (holders present, adaptive gate closed) aborts the
		// enclosing optimistic body via optAbort, which the Optimistic
		// case recovers into the pessimistic fallback.
		for _, v := range x.Vars {
			inst := instOf(env[v])
			if inst == nil {
				continue
			}
			mode := e.modeFor(inst, x.Set, x.Generic, env)
			if !tx.Observe(inst.Sem, mode, e.Res.Rank(inst.Class)) {
				panic(optAbort{})
			}
		}
	case *ir.Optimistic:
		// Hybrid envelope: run the body lock-free under TryOptimistic
		// and fall back to the unchanged pessimistic expansion when an
		// observation or the end-of-body validation fails. Hook records
		// from the optimistic run are buffered and only delivered on a
		// validated commit, so a discarded run is invisible to log-based
		// checkers; the fallback re-execution reports through the hook
		// directly, and overwrites any environment bindings the
		// discarded body left behind.
		var buf []hookRec
		bodyHook := hook
		if hook != nil {
			bodyHook = func(instID uint64, op core.Op, result core.Value) {
				buf = append(buf, hookRec{instID, op, result})
			}
		}
		committed := tx.TryOptimistic(func(tx *core.Txn) (ok bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, is := r.(optAbort); is {
						ok = false
						return
					}
					panic(r)
				}
			}()
			e.runBlock(si, sec, x.Body, env, tx, bodyHook)
			return true
		})
		if committed {
			for _, r := range buf {
				hook(r.instID, r.op, r.result)
			}
			return
		}
		e.runBlock(si, sec, x.Fallback, env, tx, hook)
	case *ir.Call:
		inst := instOf(env[x.Recv])
		if inst == nil {
			panic(fmt.Sprintf("null receiver %s at %s.%s", x.Recv, x.Recv, x.Method))
		}
		args := make([]core.Value, len(x.Args))
		for i, a := range x.Args {
			args[i] = e.evalExpr(a, env)
		}
		if e.Checked {
			tx.Assert(inst.Sem, core.Op{Method: x.Method, Args: canonArgs(args)})
		}
		res := inst.Impl.Invoke(x.Method, args)
		if hook != nil {
			hook(inst.Sem.ID(), core.Op{Method: x.Method, Args: canonArgs(args)}, canonValue(res))
		}
		if x.Assign != "" {
			env[x.Assign] = res
		}
	case *ir.Assign:
		if x.NewType != "" {
			key := x.NewType
			if k, ok := e.Res.Classes.ClassOfVar(si, x.Lhs); ok {
				key = k
			}
			env[x.Lhs] = e.NewInstance(key, x.NewType)
			return
		}
		env[x.Lhs] = e.evalExpr(x.Rhs, env)
	case *ir.If:
		if e.evalCond(x.Cond, env) {
			e.runBlock(si, sec, x.Then, env, tx, hook)
		} else {
			e.runBlock(si, sec, x.Else, env, tx, hook)
		}
	case *ir.While:
		for e.evalCond(x.Cond, env) {
			e.runBlock(si, sec, x.Body, env, tx, hook)
		}
	default:
		panic(fmt.Sprintf("interp: unknown statement %T", s))
	}
}

// optAbort unwinds a failed observation out of an optimistic body (and
// only that far: the Optimistic case recovers it inside the TryOptimistic
// closure, so the envelope's abort never crosses a transaction boundary).
type optAbort struct{}

// hookRec is one buffered OpHook record from an optimistic body.
type hookRec struct {
	instID uint64
	op     core.Op
	result core.Value
}

func (e *Executor) modeFor(inst *Instance, set core.SymSet, generic bool, env map[string]core.Value) core.ModeID {
	tbl := inst.Sem.Table()
	if generic {
		set = tbl.Spec.AllOpsSet()
	}
	ref := tbl.Set(set)
	vars := ref.Vars()
	if len(vars) == 0 {
		return ref.Mode()
	}
	vals := make([]core.Value, len(vars))
	for i, v := range vars {
		vals[i] = canonValue(env[v])
	}
	return ref.Mode(vals...)
}

func (e *Executor) evalExpr(x ir.Expr, env map[string]core.Value) core.Value {
	switch v := x.(type) {
	case ir.Lit:
		return v.Val
	case ir.VarRef:
		return env[v.Name]
	case ir.Opaque:
		if e.EvalOpaque == nil {
			panic(fmt.Sprintf("interp: no evaluator for opaque expression %q", v.Text))
		}
		return e.EvalOpaque(v.Text, env)
	default:
		panic(fmt.Sprintf("interp: unknown expression %T", x))
	}
}

func (e *Executor) evalCond(c ir.Cond, env map[string]core.Value) bool {
	switch v := c.(type) {
	case ir.IsNull:
		return instOf(env[v.Var]) == nil && env[v.Var] == nil
	case ir.NotNull:
		return env[v.Var] != nil
	case ir.OpaqueCond:
		if e.EvalOpaque == nil {
			// Bare boolean variables evaluate without a custom hook.
			if b, ok := env[v.Text].(bool); ok {
				return b
			}
			panic(fmt.Sprintf("interp: no evaluator for opaque condition %q", v.Text))
		}
		res := e.EvalOpaque(v.Text, env)
		b, ok := res.(bool)
		if !ok {
			panic(fmt.Sprintf("interp: condition %q evaluated to non-bool %v", v.Text, res))
		}
		return b
	default:
		panic(fmt.Sprintf("interp: unknown condition %T", c))
	}
}

// canonValue maps ADT instances to their stable identity so that φ and
// the coverage check see one representation for "the same instance".
func canonValue(v core.Value) core.Value {
	if inst, ok := v.(*Instance); ok {
		return inst.Sem.ID()
	}
	return v
}

func canonArgs(args []core.Value) []core.Value {
	out := make([]core.Value, len(args))
	for i, a := range args {
		out[i] = canonValue(a)
	}
	return out
}

func instOf(v core.Value) *Instance {
	if v == nil {
		return nil
	}
	inst, ok := v.(*Instance)
	if !ok {
		return nil
	}
	return inst
}

// wrapperImpl dispatches wrapped calls: the first argument is the
// member instance, the rest are the original arguments.
type wrapperImpl struct {
	w *synth.WrapperADT
}

func (wi *wrapperImpl) Invoke(method string, args []core.Value) core.Value {
	if len(args) == 0 {
		panic("interp: wrapper call without instance argument")
	}
	inst := instOf(args[0])
	if inst == nil {
		panic("interp: wrapper call on null instance")
	}
	orig := method
	if len(wi.w.Members) > 1 {
		// Multi-member wrappers prefix methods with the class key.
		for _, m := range wi.w.Members {
			prefix := m + "_"
			if len(method) > len(prefix) && method[:len(prefix)] == prefix {
				orig = method[len(prefix):]
				break
			}
		}
	}
	return inst.Impl.Invoke(orig, args[1:])
}

// DefaultRegistry returns constructors for the standard ADT library.
func DefaultRegistry() map[string]func() Impl {
	return map[string]func() Impl{
		"Map":      func() Impl { return mapImpl{adt.NewHashMap()} },
		"Set":      func() Impl { return setImpl{adt.NewHashSet()} },
		"Queue":    func() Impl { return queueImpl{adt.NewQueue()} },
		"Multimap": func() Impl { return mmImpl{adt.NewMultimap()} },
		"Counter":  func() Impl { return counterImpl{adt.NewCounter()} },
		"Deque":    func() Impl { return dequeImpl{adt.NewDeque()} },
		"PQueue":   func() Impl { return pqImpl{adt.NewPQueue()} },
		"List":     func() Impl { return listImpl{adt.NewList()} },
	}
}

type mapImpl struct{ m *adt.HashMap }

func (x mapImpl) Invoke(method string, args []core.Value) core.Value {
	switch method {
	case "get":
		return x.m.Get(args[0])
	case "put":
		return x.m.Put(args[0], args[1])
	case "putIfAbsent":
		return x.m.PutIfAbsent(args[0], args[1])
	case "remove":
		return x.m.Remove(args[0])
	case "containsKey":
		return x.m.ContainsKey(args[0])
	case "size":
		return x.m.Size()
	case "clear":
		x.m.Clear()
		return nil
	}
	panic("interp: Map has no method " + method)
}

type setImpl struct{ s *adt.HashSet }

func (x setImpl) Invoke(method string, args []core.Value) core.Value {
	switch method {
	case "add":
		x.s.Add(args[0])
		return nil
	case "remove":
		x.s.Remove(args[0])
		return nil
	case "contains":
		return x.s.Contains(args[0])
	case "size":
		return x.s.Size()
	case "clear":
		x.s.Clear()
		return nil
	}
	panic("interp: Set has no method " + method)
}

type queueImpl struct{ q *adt.Queue }

func (x queueImpl) Invoke(method string, args []core.Value) core.Value {
	switch method {
	case "enqueue":
		x.q.Enqueue(args[0])
		return nil
	case "dequeue":
		v, _ := x.q.Dequeue()
		return v
	case "isEmpty":
		return x.q.IsEmpty()
	case "size":
		return x.q.Size()
	}
	panic("interp: Queue has no method " + method)
}

type mmImpl struct{ m *adt.Multimap }

func (x mmImpl) Invoke(method string, args []core.Value) core.Value {
	switch method {
	case "get":
		return x.m.Get(args[0])
	case "put":
		return x.m.Put(args[0], args[1])
	case "remove":
		return x.m.Remove(args[0], args[1])
	case "removeAll":
		return x.m.RemoveAll(args[0])
	case "containsEntry":
		return x.m.ContainsEntry(args[0], args[1])
	case "size":
		return x.m.Size()
	}
	panic("interp: Multimap has no method " + method)
}

type counterImpl struct{ c *adt.Counter }

func (x counterImpl) Invoke(method string, args []core.Value) core.Value {
	switch method {
	case "inc":
		x.c.Inc(toI64(args[0]))
		return nil
	case "dec":
		x.c.Dec(toI64(args[0]))
		return nil
	case "read":
		return x.c.Read()
	}
	panic("interp: Counter has no method " + method)
}

type dequeImpl struct{ d *adt.Deque }

func (x dequeImpl) Invoke(method string, args []core.Value) core.Value {
	switch method {
	case "pushFront":
		x.d.PushFront(args[0])
		return nil
	case "pushBack":
		x.d.PushBack(args[0])
		return nil
	case "popFront":
		v, _ := x.d.PopFront()
		return v
	case "popBack":
		v, _ := x.d.PopBack()
		return v
	case "size":
		return x.d.Size()
	}
	panic("interp: Deque has no method " + method)
}

type pqImpl struct{ p *adt.PQueue }

func (x pqImpl) Invoke(method string, args []core.Value) core.Value {
	switch method {
	case "insert":
		x.p.Insert(toI64(args[0]), args[1])
		return nil
	case "extractMin":
		v, _ := x.p.ExtractMin()
		return v
	case "peekMin":
		v, _ := x.p.PeekMin()
		return v
	case "size":
		return x.p.Size()
	}
	panic("interp: PQueue has no method " + method)
}

type listImpl struct{ l *adt.List }

func (x listImpl) Invoke(method string, args []core.Value) core.Value {
	switch method {
	case "append":
		return x.l.Append(args[0])
	case "get":
		return x.l.Get(args[0].(int))
	case "set":
		return x.l.Set(args[0].(int), args[1])
	case "size":
		return x.l.Size()
	}
	panic("interp: List has no method " + method)
}

func toI64(v core.Value) int64 {
	switch n := v.(type) {
	case int:
		return int64(n)
	case int64:
		return n
	default:
		panic(fmt.Sprintf("interp: not an integer: %v", v))
	}
}
