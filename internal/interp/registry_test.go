package interp_test

import (
	"sync"
	"testing"

	"repro/internal/adtspecs"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/papersec"
	"repro/internal/synth"
)

func papersecFig1() *ir.Atomic { return papersec.Fig1() }

// TestSchedulerSections exercises the extended registry (PQueue, List)
// with a two-section job scheduler: submit inserts a prioritized job and
// journals it; take extracts the minimum-priority job. Under checked
// transactions, inserts may overlap each other (pool semantics) while
// extracts serialize.
func TestSchedulerSections(t *testing.T) {
	vars := func() []ir.Param {
		return []ir.Param{
			{Name: "pq", Type: "PQueue", IsADT: true, NonNull: true},
			{Name: "journal", Type: "List", IsADT: true, NonNull: true},
			{Name: "prio", Type: "int64"},
			{Name: "job", Type: "string"},
			{Name: "idx", Type: "int"},
		}
	}
	submit := &ir.Atomic{
		Name: "submit",
		Vars: vars(),
		Body: ir.Block{
			&ir.Call{Recv: "pq", Method: "insert", Args: []ir.Expr{ir.VarRef{Name: "prio"}, ir.VarRef{Name: "job"}}},
			&ir.Call{Recv: "journal", Method: "append", Args: []ir.Expr{ir.VarRef{Name: "job"}}, Assign: "idx"},
		},
	}
	take := &ir.Atomic{
		Name: "take",
		Vars: vars(),
		Body: ir.Block{
			&ir.Call{Recv: "pq", Method: "extractMin", Assign: "job"},
		},
	}
	res, err := synth.Synthesize(&synth.Program{
		Sections: []*ir.Atomic{submit, take},
		Specs:    adtspecs.All(),
	}, synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e := interp.NewExecutor(res, true)
	pq := e.NewInstance("PQueue", "PQueue")
	journal := e.NewInstance("List", "List")

	const producers = 4
	const perProducer = 100
	var wg sync.WaitGroup
	errCh := make(chan error, producers+2)
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				env := map[string]core.Value{
					"pq": pq, "journal": journal,
					"prio": int64(g*perProducer + i), "job": "j", "idx": 0,
				}
				if err := e.Run(0, env); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	taken := make([]int, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				env := map[string]core.Value{"pq": pq, "journal": journal, "job": nil, "prio": int64(0), "idx": 0}
				if err := e.Run(1, env); err != nil {
					errCh <- err
					return
				}
				if env["job"] != nil {
					taken[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	remaining := pq.Impl.Invoke("size", nil).(int)
	if taken[0]+taken[1]+remaining != producers*perProducer {
		t.Errorf("jobs lost: taken %d+%d, remaining %d, submitted %d",
			taken[0], taken[1], remaining, producers*perProducer)
	}
	if got := journal.Impl.Invoke("size", nil).(int); got != producers*perProducer {
		t.Errorf("journal has %d entries, want %d", got, producers*perProducer)
	}
}

// TestDequeRegistry covers the Deque dispatcher.
func TestDequeRegistry(t *testing.T) {
	sec := &ir.Atomic{
		Name: "d",
		Vars: []ir.Param{
			{Name: "dq", Type: "Deque", IsADT: true, NonNull: true},
			{Name: "v", Type: "int"},
			{Name: "out", Type: "int"},
		},
		Body: ir.Block{
			&ir.Call{Recv: "dq", Method: "pushBack", Args: []ir.Expr{ir.VarRef{Name: "v"}}},
			&ir.Call{Recv: "dq", Method: "pushFront", Args: []ir.Expr{ir.VarRef{Name: "v"}}},
			&ir.Call{Recv: "dq", Method: "popBack", Assign: "out"},
		},
	}
	res, err := synth.Synthesize(&synth.Program{
		Sections: []*ir.Atomic{sec},
		Specs:    adtspecs.All(),
	}, synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e := interp.NewExecutor(res, true)
	dq := e.NewInstance("Deque", "Deque")
	env := map[string]core.Value{"dq": dq, "v": 7, "out": nil}
	if err := e.Run(0, env); err != nil {
		t.Fatal(err)
	}
	if env["out"] != 7 {
		t.Errorf("popBack = %v", env["out"])
	}
	if got := dq.Impl.Invoke("size", nil).(int); got != 1 {
		t.Errorf("deque size = %d", got)
	}
}

// TestNoRefineExecution runs the Fig 1 section compiled with refinement
// disabled (generic whole-ADT locks, ablation A1) through the checked
// interpreter — the generic mode must cover every operation.
func TestNoRefineExecution(t *testing.T) {
	res, err := synth.Synthesize(&synth.Program{
		Sections: []*ir.Atomic{papersecFig1()},
		Specs:    adtspecs.All(),
	}, synth.Options{StopAfter: synth.StageRefine, NoRefine: true, Phi: core.NewPhi(4)})
	if err != nil {
		t.Fatal(err)
	}
	e := interp.NewExecutor(res, true)
	env := map[string]core.Value{
		"map": e.NewInstance("Map", "Map"), "queue": e.NewInstance("Queue", "Queue"),
		"set": nil, "id": 3, "x": 1, "y": 2, "flag": true,
	}
	if err := e.Run(0, env); err != nil {
		t.Fatal(err)
	}
}
