package interp_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/adtspecs"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/papersec"
	"repro/internal/synth"
)

// buildExec synthesizes the given sections with the full pipeline and
// returns a checked executor.
func buildExec(t *testing.T, p *synth.Program) *interp.Executor {
	t.Helper()
	res, err := synth.Synthesize(p, synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return interp.NewExecutor(res, true)
}

// TestFig1EndToEnd runs the synthesized Fig 1 section from many
// goroutines over a small key space with checked transactions. Flag is
// always true, so each transaction creates-or-reuses the id's Set, adds
// its two unique values, enqueues the Set and removes the id. Atomicity
// means every enqueued Set carries exactly one transaction's pair.
func TestFig1EndToEnd(t *testing.T) {
	prog := &synth.Program{Specs: adtspecs.All()}
	prog.Sections = append(prog.Sections, papersec.Fig1())
	e := buildExec(t, prog)

	mapInst := e.NewInstance("Map", "Map")
	queueInst := e.NewInstance("Queue", "Queue")

	const goroutines = 8
	const iters = 200
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tid := g*iters + i
				env := map[string]core.Value{
					"map":   mapInst,
					"queue": queueInst,
					"set":   nil,
					"id":    tid % 7, // contended key space
					"x":     2 * tid,
					"y":     2*tid + 1,
					"flag":  true,
				}
				if err := e.Run(0, env); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("transaction failed: %v", err)
	}

	// Drain the queue; every set must contain exactly one transaction's
	// pair {2t, 2t+1}.
	drained := 0
	for {
		v := queueInst.Impl.Invoke("dequeue", nil)
		if v == nil {
			break
		}
		drained++
		set := v.(*interp.Instance)
		size := set.Impl.Invoke("size", nil).(int)
		if size != 2 {
			t.Fatalf("enqueued set has %d elements, want 2 (atomicity violated)", size)
		}
		// Find the pair: probe by scanning possible values is O(n²);
		// instead check that for some t both 2t and 2t+1 are present.
		// We use contains on both parity classes via size-2 + one probe:
		found := false
		for tid := 0; tid < goroutines*iters; tid++ {
			if set.Impl.Invoke("contains", []core.Value{2 * tid}).(bool) {
				if !set.Impl.Invoke("contains", []core.Value{2*tid + 1}).(bool) {
					t.Fatalf("set contains %d but not %d (torn transaction)", 2*tid, 2*tid+1)
				}
				found = true
				break
			}
		}
		if !found {
			t.Fatal("enqueued set contains no even element")
		}
	}
	if drained != goroutines*iters {
		t.Fatalf("drained %d sets, want %d", drained, goroutines*iters)
	}
	if got := mapInst.Impl.Invoke("size", nil).(int); got != 0 {
		t.Errorf("map size = %d at the end, want 0 (every txn removes its id)", got)
	}
}

// TestFig7EndToEnd stresses the LV2 dynamic ordering: transactions pick
// key pairs in both orders over a tiny key space; OS2PL must prevent
// deadlock and checked mode validates the protocol.
func TestFig7EndToEnd(t *testing.T) {
	prog := &synth.Program{Specs: adtspecs.All()}
	prog.Sections = append(prog.Sections, papersec.Fig7())
	e := buildExec(t, prog)
	e.EvalOpaque = func(text string, env map[string]core.Value) core.Value {
		if text == "s1!=null && s2!=null" {
			return env["s1"] != nil && env["s2"] != nil
		}
		panic("unexpected opaque " + text)
	}

	m := e.NewInstance("Map", "Map")
	q := e.NewInstance("Queue", "Queue")
	// Pre-populate the map with Sets under keys 0..3.
	for k := 0; k < 4; k++ {
		m.Impl.Invoke("put", []core.Value{k, e.NewInstance("Set", "Set")})
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				env := map[string]core.Value{
					"m": m, "q": q, "s1": nil, "s2": nil,
					"key1": (g + i) % 4,
					"key2": (g + 3*i + 1) % 4, // frequently reversed pairs
				}
				if err := e.Run(0, env); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("transaction failed: %v", err)
	}
	if q.Impl.Invoke("size", nil).(int) == 0 {
		t.Error("no transaction enqueued anything")
	}
}

// TestFig9EndToEnd executes the wrapped-loop section: the global
// wrapper routes size() calls while OS2PL holds on the acyclic wrapped
// graph. The sum over the populated map must be exact under concurrency
// with a writer on the same instance... here all transactions read, so
// the result must equal the sequential sum.
func TestFig9EndToEnd(t *testing.T) {
	prog := &synth.Program{Specs: adtspecs.All()}
	prog.Sections = append(prog.Sections, papersec.Fig9())
	e := buildExec(t, prog)
	e.EvalOpaque = func(text string, env map[string]core.Value) core.Value {
		switch text {
		case "0":
			return 0
		case "i<n":
			return env["i"].(int) < env["n"].(int)
		case "i+1":
			return env["i"].(int) + 1
		case "sum+sz":
			return env["sum"].(int) + env["sz"].(int)
		}
		panic("unexpected opaque " + text)
	}

	m := e.NewInstance("Map", "Map")
	wantSum := 0
	for k := 0; k < 10; k++ {
		set := e.NewInstance("Set", "Set")
		for v := 0; v <= k; v++ {
			set.Impl.Invoke("add", []core.Value{v})
		}
		wantSum += k + 1
		m.Impl.Invoke("put", []core.Value{k, set})
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				env := map[string]core.Value{
					"map": m, "set": nil, "sum": 0, "i": 0, "n": 10, "sz": 0,
				}
				if err := e.Run(0, env); err != nil {
					errCh <- err
					return
				}
				if env["sum"].(int) != wantSum {
					errCh <- fmt.Errorf("sum = %v, want %d", env["sum"], wantSum)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestUncheckedRun covers the unchecked path and nil-receiver guard.
func TestUncheckedRun(t *testing.T) {
	prog := &synth.Program{Specs: adtspecs.All()}
	prog.Sections = append(prog.Sections, papersec.Fig1())
	res, err := synth.Synthesize(prog, synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e := interp.NewExecutor(res, false)
	env := map[string]core.Value{
		"map": e.NewInstance("Map", "Map"), "queue": e.NewInstance("Queue", "Queue"),
		"set": nil, "id": 1, "x": 10, "y": 11, "flag": false,
	}
	if err := e.Run(0, env); err != nil {
		t.Fatal(err)
	}
	// flag=false left the set in the map.
	m := env["map"].(*interp.Instance)
	if m.Impl.Invoke("size", nil).(int) != 1 {
		t.Error("set not retained in map")
	}
	// Null receiver must surface as an error, not a crash.
	env2 := map[string]core.Value{
		"map": nil, "queue": nil, "set": nil, "id": 1, "x": 1, "y": 2, "flag": false,
	}
	if err := e.Run(0, env2); err == nil {
		t.Error("null receiver must produce an error")
	}
}
