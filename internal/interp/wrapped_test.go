package interp_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/adtspecs"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/papersec"
	"repro/internal/synth"
)

// pairAddSection adds two values to one id's Set — always in a pair, so
// a consistent snapshot of total set sizes is always even.
func pairAddSection() *ir.Atomic {
	return &ir.Atomic{
		Name: "pairAdd",
		Vars: []ir.Param{
			{Name: "map", Type: "Map", IsADT: true, NonNull: true},
			{Name: "set", Type: "Set", IsADT: true},
			{Name: "id", Type: "int"},
			{Name: "x", Type: "int"},
			{Name: "y", Type: "int"},
		},
		Body: ir.Block{
			&ir.Call{Recv: "map", Method: "get", Args: []ir.Expr{ir.VarRef{Name: "id"}}, Assign: "set"},
			&ir.If{
				Cond: ir.NotNull{Var: "set"},
				Then: ir.Block{
					&ir.Call{Recv: "set", Method: "add", Args: []ir.Expr{ir.VarRef{Name: "x"}}},
					&ir.Call{Recv: "set", Method: "add", Args: []ir.Expr{ir.VarRef{Name: "y"}}},
				},
			},
		},
	}
}

// TestWrappedClassAtomicity combines the Fig 9 sum loop with concurrent
// pair-adders. The loop makes the Set class cyclic, so both sections'
// Set operations go through the global wrapper ADT; atomicity of the
// sum transaction demands it never observes a half-applied pair — the
// sum over all sets is always even.
func TestWrappedClassAtomicity(t *testing.T) {
	prog := &synth.Program{Specs: adtspecs.All()}
	prog.Sections = append(prog.Sections, papersec.Fig9(), pairAddSection())
	res, err := synth.Synthesize(prog, synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Wrappers) != 1 {
		t.Fatalf("expected the Set class wrapped; got %d wrappers", len(res.Wrappers))
	}
	// Both sections must route Set calls through the wrapper.
	for si, sec := range res.Sections {
		out := ir.Print(sec)
		if !containsWrapped(out) {
			t.Fatalf("section %d does not use the wrapper:\n%s", si, out)
		}
	}

	e := interp.NewExecutor(res, true)
	e.EvalOpaque = func(text string, env map[string]core.Value) core.Value {
		switch text {
		case "0":
			return 0
		case "i<n":
			return env["i"].(int) < env["n"].(int)
		case "i+1":
			return env["i"].(int) + 1
		case "sum+sz":
			return env["sum"].(int) + env["sz"].(int)
		}
		panic("unexpected opaque " + text)
	}

	m := e.NewInstance("Map", "Map")
	const nSets = 4
	for k := 0; k < nSets; k++ {
		m.Impl.Invoke("put", []core.Value{k, e.NewInstance("Set", "Set")})
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	// Pair-adders.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				v := (g*150 + i) * 2
				env := map[string]core.Value{
					"map": m, "set": nil, "id": (g + i) % nSets, "x": v, "y": v + 1,
				}
				if err := e.Run(1, env); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	// Summers: the observed total must always be even.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				env := map[string]core.Value{
					"map": m, "set": nil, "sum": 0, "i": 0, "n": nSets, "sz": 0,
				}
				if err := e.Run(0, env); err != nil {
					errCh <- err
					return
				}
				if s := env["sum"].(int); s%2 != 0 {
					errCh <- fmt.Errorf("observed odd sum %d — torn pair visible", s)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Final total: every pair landed.
	env := map[string]core.Value{"map": m, "set": nil, "sum": 0, "i": 0, "n": nSets, "sz": 0}
	if err := e.Run(0, env); err != nil {
		t.Fatal(err)
	}
	if got := env["sum"].(int); got != 4*150*2 {
		t.Errorf("final sum = %d, want %d", got, 4*150*2)
	}
}

func containsWrapped(out string) bool { return strings.Contains(out, "p1.") }

// TestCombinedSectionsNoDeadlock runs the Fig 1 and Fig 7 sections
// concurrently in one program (the Fig 11 configuration) against shared
// instances, exercising the cross-section lock order map < set < queue.
func TestCombinedSectionsNoDeadlock(t *testing.T) {
	prog := &synth.Program{Specs: adtspecs.All()}
	prog.Sections = append(prog.Sections, papersec.Fig1(), papersec.Fig7())
	res, err := synth.Synthesize(prog, synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e := interp.NewExecutor(res, true)
	e.EvalOpaque = func(text string, env map[string]core.Value) core.Value {
		switch text {
		case "s1!=null && s2!=null":
			return env["s1"] != nil && env["s2"] != nil
		case "flag":
			return env["flag"]
		}
		panic("unexpected opaque " + text)
	}

	m := e.NewInstance("Map", "Map")
	q := e.NewInstance("Queue", "Queue")

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) { // Fig 1 transactions (create, fill, sometimes drain)
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tid := g*200 + i
				env := map[string]core.Value{
					"map": m, "queue": q, "set": nil,
					"id": tid % 4, "x": 2 * tid, "y": 2*tid + 1,
					"flag": i%2 == 0,
				}
				if err := e.Run(0, env); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
		wg.Add(1)
		go func(g int) { // Fig 7 transactions on the same map/queue
			defer wg.Done()
			for i := 0; i < 200; i++ {
				env := map[string]core.Value{
					"m": m, "q": q, "s1": nil, "s2": nil,
					"key1": (g + i) % 4, "key2": (g + 3*i + 1) % 4,
				}
				if err := e.Run(1, env); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
