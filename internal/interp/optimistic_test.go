package interp_test

import (
	"sync"
	"testing"

	"repro/internal/adtspecs"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/synth"
)

// occProg: section 0 "lookup" is read-only (rewritten to an optimistic
// envelope at StageOptimistic), section 1 "update" mutates.
func occProg() *synth.Program {
	lookup := &ir.Atomic{
		Name: "lookup",
		Vars: []ir.Param{
			{Name: "m", Type: "Map", IsADT: true, NonNull: true},
			{Name: "k", Type: "int"}, {Name: "v", Type: "val"},
		},
		Body: ir.Block{
			&ir.Call{Recv: "m", Method: "get", Args: []ir.Expr{ir.VarRef{Name: "k"}}, Assign: "v"},
		},
	}
	update := &ir.Atomic{
		Name: "update",
		Vars: []ir.Param{
			{Name: "m", Type: "Map", IsADT: true, NonNull: true},
			{Name: "k", Type: "int"}, {Name: "x", Type: "val"},
		},
		Body: ir.Block{
			&ir.Call{Recv: "m", Method: "put", Args: []ir.Expr{ir.VarRef{Name: "k"}, ir.VarRef{Name: "x"}}},
		},
	}
	return &synth.Program{Sections: []*ir.Atomic{lookup, update}, Specs: adtspecs.All()}
}

func buildOccExec(t *testing.T) *interp.Executor {
	t.Helper()
	res, err := synth.Synthesize(occProg(), synth.Options{StopAfter: synth.StageOptimistic, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Sections[0].Body[0].(*ir.Optimistic); !ok {
		t.Fatalf("lookup not rewritten: %T", res.Sections[0].Body[0])
	}
	return interp.NewExecutor(res, true)
}

// TestOptimisticInterpCommits: an uncontended optimistic lookup returns
// the right value, commits without falling back (OptimisticHits
// advances), and delivers exactly one buffered hook record.
func TestOptimisticInterpCommits(t *testing.T) {
	e := buildOccExec(t)
	m := e.NewInstance("Map", "Map")

	if err := e.Run(1, map[string]core.Value{"m": m, "k": 1, "x": 42}); err != nil {
		t.Fatal(err)
	}

	var ops []core.Op
	env := map[string]core.Value{"m": m, "k": 1, "v": nil}
	err := e.RunWithHook(0, env, func(_ uint64, op core.Op, _ core.Value) {
		ops = append(ops, op)
	})
	if err != nil {
		t.Fatal(err)
	}
	if env["v"] != 42 {
		t.Errorf("v = %v, want 42", env["v"])
	}
	if len(ops) != 1 || ops[0].Method != "get" {
		t.Errorf("hook ops = %v, want one get", ops)
	}
	st := m.Sem.Stats()
	if st.OptimisticHits == 0 {
		t.Errorf("OptimisticHits = 0 after a committed optimistic run; stats %+v", st)
	}
	if st.OptimisticRetries != 0 {
		t.Errorf("OptimisticRetries = %d for an uncontended run", st.OptimisticRetries)
	}
}

// TestOptimisticInterpFallsBack: with the v1 lock mechanism (no version
// counters) observation always refuses, so the interpreter runs the
// pessimistic fallback — same answer, refusal counted, no hit.
func TestOptimisticInterpFallsBack(t *testing.T) {
	e := buildOccExec(t)
	m := e.NewInstance("Map", "Map")
	m.Sem.DisableMechV2 = true

	if err := e.Run(1, map[string]core.Value{"m": m, "k": 7, "x": 11}); err != nil {
		t.Fatal(err)
	}
	env := map[string]core.Value{"m": m, "k": 7, "v": nil}
	if err := e.Run(0, env); err != nil {
		t.Fatal(err)
	}
	if env["v"] != 11 {
		t.Errorf("v = %v, want 11 (fallback must produce the same answer)", env["v"])
	}
	st := m.Sem.Stats()
	if st.OptimisticHits != 0 {
		t.Errorf("OptimisticHits = %d under the v1 mechanism", st.OptimisticHits)
	}
	if st.OptimisticRefusals == 0 {
		t.Errorf("OptimisticRefusals = 0; the refused observation should count")
	}
	if st.OptimisticRetries != 0 {
		t.Errorf("OptimisticRetries = %d; a version-less refusal runs no body, so nothing is retried", st.OptimisticRetries)
	}
}

// TestOptimisticInterpConcurrent hammers the envelope from mixed reader
// and writer goroutines under checked transactions: readers must always
// see a value some writer put (never a torn or stale-beyond-validation
// result is checkable only statistically here; the serializability
// harness in internal/serial does the history-level check).
func TestOptimisticInterpConcurrent(t *testing.T) {
	e := buildOccExec(t)
	m := e.NewInstance("Map", "Map")
	if err := e.Run(1, map[string]core.Value{"m": m, "k": 0, "x": 0}); err != nil {
		t.Fatal(err)
	}

	const readers, writers, iters = 4, 2, 300
	var wg sync.WaitGroup
	errCh := make(chan error, readers+writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				env := map[string]core.Value{"m": m, "k": 0, "x": w*iters + i}
				if err := e.Run(1, env); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				env := map[string]core.Value{"m": m, "k": 0, "v": nil}
				if err := e.Run(0, env); err != nil {
					errCh <- err
					return
				}
				if _, ok := env["v"].(int); !ok {
					errCh <- errNonInt{env["v"]}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := m.Sem.Stats()
	if st.OptimisticHits+st.OptimisticRetries == 0 {
		t.Errorf("no optimistic attempts recorded: %+v", st)
	}
}

type errNonInt struct{ v core.Value }

func (e errNonInt) Error() string { return "lookup returned non-int value" }
