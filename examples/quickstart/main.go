// Example quickstart: the library in five steps.
//
//  1. Write your shared state as linearizable ADTs with commutativity
//     specifications (here: the paper's Fig 3 Set and a Map).
//  2. Describe your atomic sections in the IR.
//  3. Synthesize the locking with internal/synth — atomicity and
//     deadlock-freedom come out, rollback-free.
//  4. Inspect the synthesized plan (the paper's Fig 2 notation).
//  5. Execute the sections concurrently through the interpreter with
//     protocol checking on.
package main

import (
	"fmt"
	"sync"

	"repro/internal/adtspecs"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/synth"
)

func main() {
	// Step 2: an atomic "transfer" moving a value between two Sets iff
	// present — two ADT instances of one class, so the compiler emits
	// the dynamically ordered LV2 (Fig 12) to stay deadlock-free.
	transfer := &ir.Atomic{
		Name: "transfer",
		Vars: []ir.Param{
			{Name: "src", Type: "Set", IsADT: true, NonNull: true},
			{Name: "dst", Type: "Set", IsADT: true, NonNull: true},
			{Name: "v", Type: "int"},
			{Name: "has", Type: "bool"},
		},
		Body: ir.Block{
			&ir.Call{Recv: "src", Method: "contains", Args: []ir.Expr{ir.VarRef{Name: "v"}}, Assign: "has"},
			&ir.If{
				Cond: ir.OpaqueCond{Text: "has", Reads: []string{"has"}},
				Then: ir.Block{
					&ir.Call{Recv: "src", Method: "remove", Args: []ir.Expr{ir.VarRef{Name: "v"}}},
					&ir.Call{Recv: "dst", Method: "add", Args: []ir.Expr{ir.VarRef{Name: "v"}}},
				},
			},
		},
	}

	// Step 3: synthesize.
	res, err := synth.Synthesize(&synth.Program{
		Sections: []*ir.Atomic{transfer},
		Specs:    adtspecs.All(), // Step 1: Fig 3(b)-style specs
	}, synth.DefaultOptions())
	if err != nil {
		panic(err)
	}

	// Step 4: the synthesized section, in the paper's notation.
	fmt.Println("synthesized locking:")
	fmt.Println(ir.Print(res.Sections[0]))

	// Step 5: run it concurrently with checked transactions.
	exec := interp.NewExecutor(res, true)
	a := exec.NewInstance("Set", "Set")
	b := exec.NewInstance("Set", "Set")
	const total = 1000
	for v := 0; v < total; v++ {
		a.Impl.Invoke("add", []core.Value{v})
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Goroutines race to transfer every value, half of them in
			// the reverse direction — LV2's dynamic ordering prevents
			// the classic two-lock deadlock.
			for v := 0; v < total; v++ {
				src, dst := a, b
				if g%2 == 1 {
					src, dst = b, a
				}
				env := map[string]core.Value{"src": src, "dst": dst, "v": v, "has": false}
				if err := exec.Run(0, env); err != nil {
					panic(err)
				}
			}
		}(g)
	}
	wg.Wait()

	sa := a.Impl.Invoke("size", nil).(int)
	sb := b.Impl.Invoke("size", nil).(int)
	fmt.Printf("after %d racing transfers: |a|=%d |b|=%d (sum %d, want %d)\n",
		8*total, sa, sb, sa+sb, total)
	if sa+sb != total {
		panic("value conservation violated — atomicity broken")
	}
	fmt.Println("conservation holds: transfers were atomic and deadlock-free")
}
