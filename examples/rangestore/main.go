// Example rangestore: the ordered extension of the condition algebra in
// action. An ordered map (treap) is shared between writers inserting
// keyed records and analysts running range scans. The semantic lock is
// compiled from the OrderedMap specification over an interval-
// partitioned φ, so a scan of [lo, hi] blocks only the writers whose
// keys fall inside the scanned interval — writers elsewhere proceed in
// parallel with the scan. (The paper's Fig 3 conditions only need
// disequality; this example exercises core.ArgsLT / ArgsGT /
// IntervalPhi — see DESIGN.md, extensions.)
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/adt"
	"repro/internal/adtspecs"
	"repro/internal/core"
)

const (
	keyDomain = 1 << 16
	buckets   = 64
)

// store pairs the treap with its compiled semantic lock.
type store struct {
	data *adt.Treap
	sem  *core.Semantic
	put  func(core.Value) core.ModeID
	pair func(core.Value, core.Value) core.ModeID
	scan func(core.Value, core.Value) core.ModeID
}

func newStore() *store {
	spec := adtspecs.OrderedMap()
	phi := core.NewIntervalPhi(buckets, keyDomain)
	putSet := core.SymSetOf(core.SymOpOf("put", core.VarArg("k"), core.Star()))
	// A pair-insert transaction performs two puts; OS2PL allows one
	// locking operation per instance, so its lock carries the UNION
	// symbolic set {put(k,*), put(k2,*)} — exactly what the synthesizer
	// emits for a two-put atomic section.
	pairSet := core.SymSetOf(
		core.SymOpOf("put", core.VarArg("k"), core.Star()),
		core.SymOpOf("put", core.VarArg("k2"), core.Star()),
	)
	scanSet := core.SymSetOf(core.SymOpOf("rangeCount", core.VarArg("lo"), core.VarArg("hi")))
	tbl := core.NewModeTable(spec, []core.SymSet{putSet, pairSet, scanSet},
		core.TableOptions{Phi: phi, MaxModes: 3 * buckets * buckets})
	return &store{
		data: adt.NewTreap(),
		sem:  core.NewSemantic(tbl),
		put:  tbl.Set(putSet).Binder1("k"),
		pair: tbl.Set(pairSet).Binder2("k", "k2"),
		scan: tbl.Set(scanSet).Binder2("lo", "hi"),
	}
}

// Each transaction locks the single store instance at rank 0 through a
// core.Txn, which enforces the two-phase discipline the symbolic sets
// were derived under (semlockvet's txndiscipline analyzer rejects raw
// Acquire/Release here). Transactions are pooled to keep the hot path
// allocation-free.
var txns = sync.Pool{New: func() any { return core.NewTxn() }}

// Insert is the single-key write transaction.
func (s *store) Insert(k int64, v core.Value) {
	tx := txns.Get().(*core.Txn)
	defer func() { tx.UnlockAll(); tx.Reset(); txns.Put(tx) }()
	tx.Lock(s.sem, s.put(k), 0)
	s.data.Put(k, v)
}

// InsertPair atomically binds k and k+1 in one transaction.
func (s *store) InsertPair(k int64, v core.Value) {
	tx := txns.Get().(*core.Txn)
	defer func() { tx.UnlockAll(); tx.Reset(); txns.Put(tx) }()
	tx.Lock(s.sem, s.pair(k, k+1), 0)
	s.data.Put(k, v)
	s.data.Put(k+1, v)
}

// Scan is the analytic transaction: an atomic range count.
func (s *store) Scan(lo, hi int64) int {
	tx := txns.Get().(*core.Txn)
	defer func() { tx.UnlockAll(); tx.Reset(); txns.Put(tx) }()
	tx.Lock(s.sem, s.scan(lo, hi), 0)
	return s.data.RangeCount(lo, hi)
}

func main() {
	st := newStore()

	// Writers always insert PAIRS of adjacent keys inside the scanned
	// window — an atomic scan must therefore always count an even
	// number of window keys.
	const windowLo, windowHi = int64(20000), int64(29999)
	var scans, writes, odd atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := windowLo + int64(w)*1500
			for i := int64(0); i < 3000; i++ {
				k := base + (2*i)%1400 // pairs (k, k+1) stay inside the window
				st.InsertPair(k, w)
				writes.Add(2)
			}
			// And some single inserts far outside the window, which
			// commute with every scan.
			for i := int64(0); i < 1000; i++ {
				st.Insert(50000+int64(w)*100+i%100, w)
				writes.Add(1)
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if st.Scan(windowLo, windowHi)%2 != 0 {
					odd.Add(1)
				}
				scans.Add(1)
			}
		}()
	}
	wg.Wait()

	fmt.Printf("rangestore: %d writes, %d scans, %d odd observations\n",
		writes.Load(), scans.Load(), odd.Load())
	ls := st.sem.Stats()
	fmt.Printf("lock stats: %d fast-path, %d slow-path, %d waits\n", ls.FastPath, ls.Slow, ls.Waits)
	if odd.Load() != 0 {
		panic("scan observed a torn pair — range locking broken")
	}
	fmt.Println("every scan saw a consistent snapshot of the window")
}
