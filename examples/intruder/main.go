// Example intruder: the paper's §6.2 application end to end. Runs the
// signature-based network intrusion detector over the STAMP workload
// under every synchronization policy and verifies each finds exactly
// the injected attacks.
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/apps/intruder"
	"repro/internal/modules/plan"
)

func main() {
	flows := flag.Int("n", 4096, "number of flows (paper: 16384)")
	attacks := flag.Int("a", 10, "attack percentage")
	maxLen := flag.Int("l", 256, "max flow length")
	seed := flag.Int64("s", 1, "seed")
	workers := flag.Int("workers", 4, "worker count")
	flag.Parse()

	cfg := intruder.Config{Attacks: *attacks, MaxLength: *maxLen, Flows: *flows, Seed: *seed}
	w := intruder.Generate(cfg)
	fmt.Printf("workload: %d flows, %d packets, %d attack flows injected\n",
		cfg.Flows, len(w.Packets), w.AttackFlows)

	for _, pol := range intruder.Policies() {
		proc := intruder.NewProcessor(pol, plan.Options{})
		start := time.Now()
		found := intruder.Run(w, proc, *workers)
		status := "OK"
		if found != w.AttackFlows {
			status = "MISMATCH"
		}
		fmt.Printf("%-8s %d workers: %5d attacks detected in %8v  [%s]\n",
			pol, *workers, found, time.Since(start).Round(time.Microsecond), status)
	}
}
