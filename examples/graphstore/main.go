// Example graphstore: the §6.1 Graph composite module used as a small
// concurrent graph database. Demonstrates the multi-ADT atomicity the
// paper targets — every edge mutation touches both the successor and
// predecessor multimaps, and the mirror invariant survives a concurrent
// mixed workload under the synthesized locking.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/modules/graph"
	"repro/internal/modules/plan"
)

func main() {
	workers := flag.Int("workers", 8, "concurrent workers")
	ops := flag.Int("ops", 20000, "operations per worker")
	nodes := flag.Int("nodes", 1<<12, "node space")
	flag.Parse()

	for _, pol := range graph.Policies() {
		g := graph.New(pol, plan.Options{})
		start := time.Now()
		var wg sync.WaitGroup
		for wk := 0; wk < *workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(wk) + 42))
				for i := 0; i < *ops; i++ {
					op := rng.Intn(100)
					a, b := rng.Intn(*nodes), rng.Intn(*nodes)
					switch {
					case op < 35:
						g.FindSuccessors(a)
					case op < 70:
						g.FindPredecessors(a)
					case op < 90:
						g.InsertEdge(a, b)
					default:
						g.RemoveEdge(a, b)
					}
				}
			}(wk)
		}
		wg.Wait()
		elapsed := time.Since(start)

		// Verify the mirror invariant on a sample of nodes.
		broken := 0
		for n := 0; n < 256; n++ {
			for _, d := range g.FindSuccessors(n) {
				ok := false
				for _, back := range g.FindPredecessors(d.(int)) {
					if back == n {
						ok = true
					}
				}
				if !ok {
					broken++
				}
			}
		}
		fmt.Printf("%-8s %7.0f ops/ms, mirror violations: %d\n",
			pol, float64(*workers**ops)/float64(elapsed.Microseconds())*1000, broken)
		if broken != 0 {
			panic("graph invariant broken")
		}
	}
}
