package demo

import (
	"sync"
	"testing"
)

// TestGeneratedProcessAtomicity runs the semlockc-generated Process
// concurrently: with flag=true every transaction creates-or-reuses the
// id's Set, adds its unique pair, enqueues the Set and removes the id —
// so every enqueued Set must hold exactly one transaction's pair, and
// the map must end empty. This is the same invariant the interpreter's
// Fig 1 test checks, now on compiled output.
func TestGeneratedProcessAtomicity(t *testing.T) {
	m := NewDemoMap()
	q := NewDemoQueue()
	const goroutines = 8
	const iters = 150
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tid := g*iters + i
				Process(m, q, tid%5, 2*tid, 2*tid+1, true)
			}
		}(g)
	}
	wg.Wait()

	drained := 0
	for {
		v := q.Dequeue()
		if v == nil {
			break
		}
		drained++
		set := v.(*SetAlias)
		if set.Size() != 2 {
			t.Fatalf("enqueued set has %d elements, want 2", set.Size())
		}
	}
	if drained != goroutines*iters {
		t.Fatalf("drained %d sets, want %d", drained, goroutines*iters)
	}
	if m.Size() != 0 {
		t.Errorf("map size = %d at the end, want 0", m.Size())
	}
}
