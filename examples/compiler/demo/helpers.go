// Package demo holds the semlockc-compiled form of the Fig 1 atomic
// section (demo_semlock.go is generated; see input.go.txt for the
// annotated source). This file adds the hand-written constructors the
// example and its tests use to create instances bound to the compiled
// plan's mode tables.
package demo

import "repro/internal/semadt"

// SetAlias re-exports the wrapper Set type for test assertions.
type SetAlias = semadt.Set

// NewDemoMap creates the shared Map instance of the example.
func NewDemoMap() *semadt.Map { return semadt.NewMap(_semlockPlan.Table("Map")) }

// NewDemoQueue creates the shared Queue instance of the example.
func NewDemoQueue() *semadt.Queue { return semadt.NewQueue(_semlockPlan.Table("Queue")) }
