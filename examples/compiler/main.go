// Example compiler: drives the semlockc-generated Fig 1 section (see
// demo/input.go.txt for the annotated source and demo/demo_semlock.go
// for the compiler output) from many goroutines and verifies the
// atomicity invariant at the end.
//
//semlockvet:file-ignore guardedby -- verification reads run after wg.Wait(): every worker has quiesced, the instances are process-local
package main

import (
	"fmt"
	"sync"

	"repro/examples/compiler/demo"
)

func main() {
	m := demo.NewDemoMap()
	q := demo.NewDemoQueue()

	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tid := g*iters + i
				demo.Process(m, q, tid%7, 2*tid, 2*tid+1, true)
			}
		}(g)
	}
	wg.Wait()

	sets, torn := 0, 0
	for {
		v := q.Dequeue()
		if v == nil {
			break
		}
		sets++
		if v.(*demo.SetAlias).Size() != 2 {
			torn++
		}
	}
	fmt.Printf("compiler example: %d transactions, %d enqueued sets, %d torn, map size %d\n",
		goroutines*iters, sets, torn, m.Size())
	if torn != 0 || sets != goroutines*iters || m.Size() != 0 {
		panic("atomicity violated")
	}
	fmt.Println("atomicity verified: every set carries exactly one transaction's pair")
}
