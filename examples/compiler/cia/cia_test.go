package cia

import (
	"sync"
	"testing"
)

// TestCompiledComputeIfAbsent: the generated function hands out exactly
// one value per key under same-key contention.
func TestCompiledComputeIfAbsent(t *testing.T) {
	cache := NewCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				ComputeIfAbsent(cache, (g+i)%11)
			}
		}(g)
	}
	wg.Wait()
	if cache.Size() != 11 {
		t.Fatalf("cache size = %d, want 11", cache.Size())
	}
	for k := 0; k < 11; k++ {
		v := cache.Get(k)
		if v == nil || v.([]byte)[0] != byte(k) {
			t.Errorf("key %d bound to %v", k, v)
		}
	}
}
