// Package cia holds the semlockc-compiled ComputeIfAbsent pattern (§6.1)
// — see input.go.txt for the annotated source and cia_semlock.go for the
// generated output.
package cia

import (
	"repro/internal/core"
	"repro/internal/semadt"
)

// compute is the pure computation of the pattern (the paper emulates it
// with a 128-byte allocation).
func compute(key int) core.Value {
	b := make([]byte, 128)
	b[0] = byte(key)
	return b
}

// NewCache creates the shared Map bound to the compiled plan's table.
func NewCache() *semadt.Map { return semadt.NewMap(_semlockPlan.Table("Map")) }
